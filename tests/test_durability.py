"""Durable backend suite: WAL, recovery, and adversarial crash–reopen.

Three layers:

* **Unit** — record-log framing (torn tails, corrupt records, tail
  repair), segment round-trips with CRC verification, term-pool replay
  giving bit-identical IDs.
* **Crash at every I/O fault site** — a scripted workload is run with
  each ``durable.*`` site armed; the ``on_fire`` hook photographs the
  store directory at the instant of the simulated crash (each log cut
  at its last-fsynced byte, exactly what power loss preserves) and the
  reopened photograph must equal the pre-crash *committed* state —
  never a partial batch.  The surviving in-process store must also
  repair its tail and stay fully usable.
* **Hypothesis crash–reopen machine** — random op streams (adds,
  removes, transactions, graph drops, checkpoints) interleaved with
  crashes at random sites; after every crash the reopened copy must
  equal the model's committed state, at every site, every time.
"""

import os
import shutil
import subprocess
import sys
import tempfile
from pathlib import Path

import pytest
from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, initialize, rule

from repro.core import Triple, URI
from repro.core.terms import BNode, Literal
from repro.core.vocabulary import SC, TYPE
from repro.ingest.spill import RunPool
from repro.robustness import FAULTS, InjectedFault
from repro.semantics import rdfs_closure
from repro.store import DurableBackend, StorageError, TripleStore
from repro.store.durable import MAGIC, RecordLog, scan_records
from repro.store.durable.recordlog import frame_record
from repro.store.durable.segments import read_segment, write_segment


@pytest.fixture(autouse=True)
def _clean_faults():
    yield
    FAULTS.reset()


@pytest.fixture()
def tmp_store_dir(tmp_path):
    return tmp_path / "store"


def _triple(s, p, o):
    return Triple(
        URI(s) if isinstance(s, str) else s,
        URI(p) if isinstance(p, str) else p,
        URI(o) if isinstance(o, str) else o,
    )


def _graphs_snapshot(store):
    return {name: set(store.graph(name)) for name in store.graph_names()}


def _crash_copy(store_dir, sync_points, dest_parent, keep_tail=0):
    """Photograph *store_dir* as a power loss would leave it.

    Every log file is cut at its last-fsynced byte — plus up to
    *keep_tail* bytes of the unsynced tail, simulating a partially
    written (torn) record that happened to reach the platter.
    """
    dest = Path(tempfile.mkdtemp(dir=dest_parent)) / "crashed"
    shutil.copytree(store_dir, dest)
    for name, synced in sync_points.items():
        target = dest / name
        if target.exists():
            size = target.stat().st_size
            keep = min(size, synced + keep_tail)
            with open(target, "r+b") as f:
                f.truncate(keep)
    return dest


# ---------------------------------------------------------------------------
# Record log
# ---------------------------------------------------------------------------


class TestRecordLog:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "x.log"
        log = RecordLog(path, 0, 0)
        payloads = [b"alpha", b"", b"\x00" * 1000, "päyload".encode()]
        for p in payloads:
            log.append(p)
        log.sync()
        log.close()
        got, valid_end, size = scan_records(path)
        assert got == payloads
        assert valid_end == size == path.stat().st_size

    def test_torn_tail_is_detected_and_repaired(self, tmp_path):
        path = tmp_path / "x.log"
        log = RecordLog(path, 0, 0)
        log.append(b"kept")
        log.sync()
        log.close()
        whole = path.read_bytes()
        torn = whole + frame_record(b"torn record")[:-3]
        path.write_bytes(torn)
        got, valid_end, size = scan_records(path)
        assert got == [b"kept"]
        assert valid_end == len(whole)
        assert size == len(torn)
        # Reopening repairs the tail, and appends land after the
        # intact prefix.
        log = RecordLog(path, valid_end, size)
        log.append(b"after")
        log.sync()
        log.close()
        got, _, _ = scan_records(path)
        assert got == [b"kept", b"after"]

    def test_corrupt_record_stops_the_scan(self, tmp_path):
        path = tmp_path / "x.log"
        log = RecordLog(path, 0, 0)
        log.append(b"one")
        log.append(b"two")
        log.sync()
        log.close()
        blob = bytearray(path.read_bytes())
        blob[-1] ^= 0xFF  # flip a byte inside the last payload
        path.write_bytes(bytes(blob))
        got, valid_end, _ = scan_records(path)
        assert got == [b"one"]
        assert valid_end == len(MAGIC) + 8 + len(b"one")

    def test_missing_or_headerless_file(self, tmp_path):
        assert scan_records(tmp_path / "absent.log") == ([], 0, 0)
        bad = tmp_path / "bad.log"
        bad.write_bytes(b"not a log")
        got, valid_end, size = scan_records(bad)
        assert (got, valid_end) == ([], 0)
        assert size == 9
        # The constructor recreates the header over the junk.
        log = RecordLog(bad, 0, size)
        log.append(b"fresh")
        log.sync()
        log.close()
        assert scan_records(bad)[0] == [b"fresh"]

    def test_truncate_to_drops_unsynced_suffix(self, tmp_path):
        path = tmp_path / "x.log"
        log = RecordLog(path, 0, 0)
        log.append(b"committed")
        log.sync()
        mark = log.size
        log.append(b"doomed")
        log.truncate_to(mark)
        log.append(b"next")
        log.sync()
        log.close()
        assert scan_records(path)[0] == [b"committed", b"next"]


# ---------------------------------------------------------------------------
# Segments
# ---------------------------------------------------------------------------


class TestSegments:
    ROWS = sorted({(1, 2, 3), (1, 2, 4), (5, 0, 1), (2, 2, 2)})

    def test_round_trip_and_warm_views(self, tmp_path):
        meta = write_segment(tmp_path / "g0", self.ROWS)
        assert meta["rows"] == len(self.ROWS)
        runs = read_segment(tmp_path / "g0", meta)
        assert list(runs.rows()) == self.ROWS
        # The POS/OSP views were installed from the files, not rebuilt.
        assert runs._pos is not None and runs._osp is not None
        pos = runs.pos
        assert list(zip(pos.c0, pos.c1, pos.c2)) == sorted(
            (p, o, s) for s, p, o in self.ROWS
        )

    def test_crc_mismatch_raises(self, tmp_path):
        meta = write_segment(tmp_path / "g0", self.ROWS)
        target = tmp_path / "g0.pos.bin"
        blob = bytearray(target.read_bytes())
        blob[0] ^= 0xFF
        target.write_bytes(bytes(blob))
        with pytest.raises(StorageError, match="CRC"):
            read_segment(tmp_path / "g0", meta)

    def test_missing_file_raises(self, tmp_path):
        meta = write_segment(tmp_path / "g0", self.ROWS)
        os.unlink(tmp_path / "g0.osp.bin")
        with pytest.raises(StorageError, match="missing"):
            read_segment(tmp_path / "g0", meta)


# ---------------------------------------------------------------------------
# Engine + durable backend, fault-free
# ---------------------------------------------------------------------------


class TestDurableStore:
    def test_restart_preserves_graphs_terms_and_closure(self, tmp_store_dir):
        store = TripleStore.open(tmp_store_dir)
        store.add(_triple("u:painter", SC, "u:artist"))
        store.add_all(
            [
                _triple("u:frida", TYPE, "u:painter"),
                Triple(URI("u:frida"), URI("u:says"), Literal("¡hola!\n")),
                Triple(BNode("b0"), URI("u:knows"), BNode("b1")),
            ],
            graph="extra",
        )
        with store.transaction():
            store.add(_triple("u:diego", TYPE, "u:painter"))
            store.remove(_triple("u:painter", SC, "u:artist"))
        expected = _graphs_snapshot(store)
        expected_ids = dict(store.term_dict._ids)
        expected_closure = store.closure()
        store.close()

        reopened = TripleStore.open(tmp_store_dir)
        assert _graphs_snapshot(reopened) == expected
        # Term IDs are bit-identical across restart (pool replay).
        assert dict(reopened.term_dict._ids) == expected_ids
        assert reopened.closure() == expected_closure
        reopened.close()

    def test_rolled_back_transaction_is_not_persisted(self, tmp_store_dir):
        store = TripleStore.open(tmp_store_dir)
        store.add(_triple("u:a", "u:p", "u:b"))
        store.begin()
        store.add(_triple("u:x", "u:p", "u:y"))
        store.rollback()
        expected = _graphs_snapshot(store)
        store.close()
        reopened = TripleStore.open(tmp_store_dir)
        assert _graphs_snapshot(reopened) == expected
        reopened.close()

    def test_checkpoint_compacts_and_preserves_state(self, tmp_store_dir):
        store = TripleStore.open(tmp_store_dir)
        for i in range(40):
            store.add(_triple(f"u:s{i}", "u:p", f"u:o{i % 7}"))
        store.remove(_triple("u:s3", "u:p", "u:o3"))
        store.clear("nope-not-there")
        expected = _graphs_snapshot(store)
        store.checkpoint()
        info = store.backend.info()
        assert info["generation"] == 1
        # The WAL was reset: only the old generation's files are gone.
        names = {p.name for p in Path(tmp_store_dir).iterdir()}
        assert "wal-0.log" not in names and "wal-1.log" in names
        store.add(_triple("u:after", "u:p", "u:ckpt"))
        expected["default"].add(_triple("u:after", "u:p", "u:ckpt"))
        store.close()
        reopened = TripleStore.open(tmp_store_dir)
        assert _graphs_snapshot(reopened) == expected
        reopened.close()

    def test_auto_checkpoint_fires_on_wal_growth(self, tmp_store_dir):
        store = TripleStore.open(tmp_store_dir, wal_checkpoint_bytes=2_000)
        for i in range(200):
            store.add(_triple(f"u:s{i}", "u:p", f"u:o{i}"))
        assert store.backend.info()["generation"] >= 1
        assert store.metrics.counter("durable.checkpoints") >= 1
        expected = _graphs_snapshot(store)
        store.close()
        reopened = TripleStore.open(tmp_store_dir)
        assert _graphs_snapshot(reopened) == expected
        reopened.close()

    def test_clear_drop_and_empty_graphs_survive_restart(self, tmp_store_dir):
        store = TripleStore.open(tmp_store_dir)
        store.add(_triple("u:a", "u:p", "u:b"), graph="g1")
        store.add(_triple("u:c", "u:p", "u:d"), graph="g2")
        store.remove(_triple("u:a", "u:p", "u:b"), graph="g1")  # empty, kept
        store.clear("g2")  # name dropped
        expected = _graphs_snapshot(store)
        assert "g1" in expected and "g2" not in expected
        store.close()
        reopened = TripleStore.open(tmp_store_dir)
        assert _graphs_snapshot(reopened) == expected
        reopened.clear()
        reopened.close()
        wiped = TripleStore.open(tmp_store_dir)
        assert _graphs_snapshot(wiped) == {"default": set()}
        wiped.close()

    def test_memory_store_has_no_persistence_overhead_paths(self):
        store = TripleStore()
        assert store.durable is False
        store.add(_triple("u:a", "u:p", "u:b"))
        assert store._durable_ops == []

    def test_wal_counters_flow_through_metrics(self, tmp_store_dir):
        store = TripleStore.open(tmp_store_dir)
        store.add(_triple("u:a", "u:p", "u:b"))
        assert store.metrics.counter("wal.appends") >= 2  # ops + commit
        assert store.metrics.counter("wal.fsyncs") >= 1
        assert store.metrics.counter("wal.terms.appends") >= 3
        store.close()
        reopened = TripleStore.open(tmp_store_dir)
        assert reopened.metrics.counter("wal.recovered_batches") == 1
        reopened.close()

    def test_poisoned_backend_refuses_further_commits(
        self, tmp_store_dir, monkeypatch
    ):
        store = TripleStore.open(tmp_store_dir)
        store.add(_triple("u:a", "u:p", "u:b"))

        def broken_truncate(self, offset):
            raise OSError("no repair for you")

        monkeypatch.setattr(RecordLog, "truncate_to", broken_truncate)
        FAULTS.arm("durable.wal.pre_fsync")
        with pytest.raises(InjectedFault):
            store.add(_triple("u:c", "u:p", "u:d"))
        FAULTS.reset()
        monkeypatch.undo()
        with pytest.raises(StorageError, match="poisoned"):
            store.add(_triple("u:e", "u:p", "u:f"))
        store.close()
        # Reopening recovers.  The failed batch was fully flushed (the
        # fault fired between flush and fsync) and the broken repair
        # never cut it, so on this machine's filesystem the intact
        # commit record makes it part of the recovered state — the
        # "may survive whole" arm of the all-or-nothing contract.
        reopened = TripleStore.open(tmp_store_dir)
        assert _graphs_snapshot(reopened) == {
            "default": {
                _triple("u:a", "u:p", "u:b"),
                _triple("u:c", "u:p", "u:d"),
            }
        }
        reopened.add(_triple("u:e", "u:p", "u:f"))
        reopened.close()


# ---------------------------------------------------------------------------
# Crash simulation at every durable I/O fault site
# ---------------------------------------------------------------------------

#: (site, on_hit) pairs covering both logs' post-write and pre-fsync
#: windows.  on_hit=2 for wal.post_write lands mid-batch (after the
#: first of several records), the nastiest torn-batch shape.
_COMMIT_CRASH_SITES = [
    ("durable.terms.post_write", 1),
    ("durable.terms.post_write", 2),
    ("durable.terms.pre_fsync", 1),
    ("durable.wal.post_write", 1),
    ("durable.wal.post_write", 2),
    ("durable.wal.pre_fsync", 1),
]


class TestCrashRecovery:
    def _run_workload_crashing_at(
        self, site, on_hit, tmp_path, keep_tail=0
    ):
        """Crash batch 3 of a 4-batch workload at *site*; reopen the
        photograph; return (reopened snapshot, committed-prefix
        snapshots, surviving store)."""
        store_dir = tmp_path / "store"
        store = TripleStore.open(store_dir)
        committed = []
        store.add(_triple("u:painter", SC, "u:artist"))       # batch 1
        committed.append(_graphs_snapshot(store))
        store.add_all(                                         # batch 2
            [
                _triple("u:frida", TYPE, "u:painter"),
                Triple(URI("u:frida"), URI("u:says"), Literal("hi")),
            ],
            graph="extra",
        )
        committed.append(_graphs_snapshot(store))

        crashed = {}

        def photograph(_site):
            crashed["dir"] = _crash_copy(
                store_dir,
                store.backend.sync_points(),
                tmp_path,
                keep_tail=keep_tail,
            )

        FAULTS.arm(site, on_hit=on_hit, on_fire=photograph)
        with pytest.raises(InjectedFault):
            store.add_all(                                     # batch 3
                [
                    _triple("u:diego", TYPE, "u:painter"),
                    _triple("u:diego", "u:knows", "u:frida"),
                ]
            )
        FAULTS.reset()
        assert "dir" in crashed, f"scenario never reached {site}"
        reopened = TripleStore.open(crashed["dir"])
        snapshot = _graphs_snapshot(reopened)
        reopened.close()
        return snapshot, committed, store

    @pytest.mark.parametrize("site,on_hit", _COMMIT_CRASH_SITES)
    def test_crash_mid_commit_recovers_committed_prefix(
        self, site, on_hit, tmp_path
    ):
        snapshot, committed, store = self._run_workload_crashing_at(
            site, on_hit, tmp_path
        )
        # Strict power loss: nothing of batch 3 was fsynced, so the
        # reopened store is exactly the two-batch committed state.
        assert snapshot == committed[-1]
        # The surviving in-process store repaired its tail and rolled
        # the failed batch back; it must still work end to end.
        assert _graphs_snapshot(store) == committed[-1]
        store.add(_triple("u:new", "u:p", "u:after"))
        assert store.closure() == rdfs_closure(store.dataset())
        store.close()

    @pytest.mark.parametrize("site,on_hit", _COMMIT_CRASH_SITES)
    def test_crash_with_torn_tail_never_yields_partial_batch(
        self, site, on_hit, tmp_path
    ):
        # Keep 13 bytes of the unsynced tail: a torn record fragment.
        snapshot, committed, store = self._run_workload_crashing_at(
            site, on_hit, tmp_path, keep_tail=13
        )
        assert snapshot == committed[-1]
        store.close()

    def test_flushed_but_unfsynced_batch_may_survive_whole(self, tmp_path):
        """At wal.pre_fsync the full batch is in the file (flushed);
        if the OS happened to write it out, recovery must surface the
        *whole* batch — the all-or-nothing contract's other arm."""
        store_dir = tmp_path / "store"
        store = TripleStore.open(store_dir)
        store.add(_triple("u:a", "u:p", "u:b"))
        before = _graphs_snapshot(store)
        crashed = {}

        def photograph(_site):
            # Copy WITHOUT truncation: every flushed byte survived.
            dest = Path(tempfile.mkdtemp(dir=tmp_path)) / "crashed"
            shutil.copytree(store_dir, dest)
            crashed["dir"] = dest

        FAULTS.arm("durable.wal.pre_fsync", on_fire=photograph)
        with pytest.raises(InjectedFault):
            store.add(_triple("u:c", "u:p", "u:d"))
        FAULTS.reset()
        after = dict(before)
        after["default"] = before["default"] | {_triple("u:c", "u:p", "u:d")}
        reopened = TripleStore.open(crashed["dir"])
        assert _graphs_snapshot(reopened) in (before, after)
        assert _graphs_snapshot(reopened) == after  # C record was flushed
        reopened.close()
        store.close()

    @pytest.mark.parametrize(
        "site,on_hit",
        [
            ("durable.checkpoint.mid_compaction", 1),
            ("durable.checkpoint.mid_compaction", 2),
            ("durable.checkpoint.mid_compaction", 3),
            ("durable.checkpoint.pre_rename", 1),
        ],
    )
    def test_crash_mid_checkpoint_keeps_old_generation(
        self, site, on_hit, tmp_path
    ):
        store_dir = tmp_path / "store"
        store = TripleStore.open(store_dir)
        for i in range(25):
            store.add(_triple(f"u:s{i}", "u:p", f"u:o{i % 5}"), graph="g")
        expected = _graphs_snapshot(store)
        crashed = {}

        def photograph(_site):
            dest = Path(tempfile.mkdtemp(dir=tmp_path)) / "crashed"
            shutil.copytree(store_dir, dest)
            crashed["dir"] = dest

        FAULTS.arm(site, on_hit=on_hit, on_fire=photograph)
        with pytest.raises(InjectedFault):
            store.checkpoint()
        FAULTS.reset()
        assert "dir" in crashed, f"checkpoint never reached {site}"
        reopened = TripleStore.open(crashed["dir"])
        assert _graphs_snapshot(reopened) == expected
        # Recovery swept the half-built generation's stray files.
        names = {p.name for p in Path(crashed["dir"]).iterdir()}
        assert not any(n.startswith("segments-1") for n in names)
        assert "wal-1.log" not in names
        reopened.close()
        # The in-process store kept serving the old generation and can
        # still checkpoint successfully afterwards.
        assert _graphs_snapshot(store) == expected
        store.checkpoint()
        assert store.backend.info()["generation"] >= 1
        store.close()


# ---------------------------------------------------------------------------
# Hypothesis crash–reopen machine
# ---------------------------------------------------------------------------

_SUBJECTS = [f"u:s{i}" for i in range(6)]
_OBJECTS = [f"u:o{i}" for i in range(4)]
_GRAPHS = ["default", "g1", "g2"]

_CRASH_SITES = st.sampled_from(
    [
        "durable.terms.post_write",
        "durable.terms.pre_fsync",
        "durable.wal.post_write",
        "durable.wal.pre_fsync",
    ]
)


class CrashReopenMachine(RuleBasedStateMachine):
    """Random committed workloads interleaved with crashes.

    The model tracks exactly what a correct store must contain after
    each *committed* operation; a crash photographs the directory at
    its durable prefix and the reopened photograph must equal the
    model — at every site, after any op sequence.
    """

    @initialize()
    def open_store(self):
        self.tmp = Path(tempfile.mkdtemp(prefix="repro-crashmachine-"))
        self.store_dir = self.tmp / "store"
        self.store = TripleStore.open(self.store_dir)
        self.model = {"default": set()}

    def teardown(self):
        try:
            self.store.close()
        finally:
            shutil.rmtree(self.tmp, ignore_errors=True)

    def _model_add(self, t, graph):
        self.model.setdefault(graph, set()).add(t)

    @rule(
        s=st.sampled_from(_SUBJECTS),
        o=st.sampled_from(_OBJECTS),
        graph=st.sampled_from(_GRAPHS),
    )
    def add(self, s, o, graph):
        t = _triple(s, "u:p", o)
        self.store.add(t, graph=graph)
        self._model_add(t, graph)

    @rule(
        s=st.sampled_from(_SUBJECTS),
        o=st.sampled_from(_OBJECTS),
        graph=st.sampled_from(_GRAPHS),
    )
    def remove(self, s, o, graph):
        t = _triple(s, "u:p", o)
        self.store.remove(t, graph=graph)
        self.model.get(graph, set()).discard(t)

    @rule(
        pairs=st.lists(
            st.tuples(st.sampled_from(_SUBJECTS), st.sampled_from(_OBJECTS)),
            min_size=1,
            max_size=4,
        ),
        graph=st.sampled_from(_GRAPHS),
    )
    def txn_batch(self, pairs, graph):
        with self.store.transaction():
            for s, o in pairs:
                t = _triple(s, "u:q", o)
                self.store.add(t, graph=graph)
                self._model_add(t, graph)

    @rule(graph=st.sampled_from(["g1", "g2"]))
    def drop_graph(self, graph):
        self.store.clear(graph)
        self.model.pop(graph, None)

    @rule()
    def checkpoint(self):
        self.store.checkpoint()

    @rule(
        site=_CRASH_SITES,
        on_hit=st.integers(min_value=1, max_value=3),
        keep_tail=st.sampled_from([0, 7]),
        s=st.sampled_from(_SUBJECTS),
    )
    def crash_and_verify(self, site, on_hit, keep_tail, s):
        # A fresh subject string forces new term-pool records, so the
        # terms.* sites are genuinely reachable.
        t = _triple(s + ":fresh" + str(len(self.model)), "u:r", "u:new")
        crashed = {}

        def photograph(_site):
            crashed["dir"] = _crash_copy(
                self.store_dir,
                self.store.backend.sync_points(),
                self.tmp,
                keep_tail=keep_tail,
            )

        FAULTS.arm(site, on_hit=on_hit, on_fire=photograph)
        try:
            self.store.add(t)
            fired = False
        except InjectedFault:
            fired = True
        finally:
            FAULTS.reset()
        if not fired:
            # on_hit exceeded the site's dynamic hits for one add;
            # the write committed normally.
            self._model_add(t, "default")
            return
        assert "dir" in crashed
        reopened = TripleStore.open(crashed["dir"])
        try:
            assert _graphs_snapshot(reopened) == {
                name: set(rows) for name, rows in self.model.items()
            }
        finally:
            reopened.close()
        # The surviving store rolled the op back; model unchanged.


CrashReopenMachine.TestCase.settings = settings(
    max_examples=50 if os.environ.get("REPRO_CHAOS") else 20,
    stateful_step_count=12,
    deadline=None,
)
TestCrashReopen = CrashReopenMachine.TestCase


# ---------------------------------------------------------------------------
# Restart survival across real processes (satellite: load → kill → open)
# ---------------------------------------------------------------------------

_SURVIVAL_DATA = """\
painter sc artist .
paints dom painter .
Picasso paints Guernica .
Frida paints TwoFridas .
"""

_SURVIVAL_QUERY = """\
CONSTRUCT { ?X status known-artist . }
WHERE { ?X type artist . }
"""

#: Run by the "crashed writer" process: commit one more triple into the
#: store, scribble a torn record fragment onto the live WAL, and die
#: hard — no close(), no atexit, exactly what kill -9 preserves.
_KILLED_WRITER = """\
import os, sys
from repro.core import Triple, URI
from repro.store import TripleStore

store_dir = sys.argv[1]
store = TripleStore.open(store_dir)
store.add(Triple(URI("Rivera"), URI("paints"), URI("ManAtCrossroads")))
wal = store.backend.info()["wal_file"]
with open(os.path.join(store_dir, wal), "ab") as f:
    f.write(b"\\x99" * 13)  # in-flight record torn by the crash
    f.flush()
os._exit(1)
"""

#: Run by the fresh reader process (one per closure kernel): the
#: reopened store must match a from-scratch in-memory reference exactly,
#: and its closure/answers are printed for cross-kernel byte comparison.
_REOPEN_VERIFIER = """\
import sys
from repro.rdfio.ntriples import parse_ntriples, serialize_ntriples
from repro.rdfio.query_syntax import parse_query
from repro.semantics import rdfs_closure
from repro.store import TripleStore

store_dir, data_path, query_path = sys.argv[1:4]
expected = parse_ntriples(open(data_path).read())
store = TripleStore.open(store_dir)
assert set(store.dataset()) == set(expected), "dataset drift after reopen"
closure_text = serialize_ntriples(store.closure())
assert closure_text == serialize_ntriples(rdfs_closure(expected))
answer_text = serialize_ntriples(
    store.query(parse_query(open(query_path).read()))
)
store.close()
sys.stdout.write(closure_text)
sys.stdout.write("--ANSWERS--\\n")
sys.stdout.write(answer_text)
"""


class TestRestartSurvival:
    """``repro load --store`` → hard-killed writer → ``repro open``.

    Each stage is a real process: the loader exits, a second process
    commits one batch and dies via ``os._exit`` with a torn record on
    the WAL tail, ``repro open`` must recover without error, and a
    fresh reader process per closure kernel must see byte-identical
    closure and query answers.
    """

    def _run(self, argv, kernel, **kw):
        env = dict(
            os.environ,
            PYTHONPATH=str(Path(__file__).resolve().parent.parent / "src"),
            REPRO_CLOSURE_KERNEL=kernel,
        )
        return subprocess.run(
            [sys.executable] + argv,
            capture_output=True,
            text=True,
            env=env,
            **kw,
        )

    def test_load_kill_open_round_trip_under_all_kernels(self, tmp_path):
        data = tmp_path / "data.nt"
        data.write_text(_SURVIVAL_DATA)
        query = tmp_path / "q.rq"
        query.write_text(_SURVIVAL_QUERY)
        full = tmp_path / "full.nt"  # what the store must hold post-crash
        full.write_text(
            _SURVIVAL_DATA + "Rivera paints ManAtCrossroads .\n"
        )
        outputs = {}
        for kernel in ("arrays", "encoded", "boxed"):
            store_dir = str(tmp_path / f"store-{kernel}")
            loaded = self._run(
                ["-m", "repro.cli", "load", str(data), "--store", store_dir],
                kernel,
                check=True,
            )
            assert "store new triples:  4" in loaded.stdout
            # The writer always dies: exit code 1 from os._exit, and its
            # committed batch plus 13 bytes of torn garbage on the WAL.
            killed = self._run(
                ["-c", _KILLED_WRITER, store_dir], kernel
            )
            assert killed.returncode == 1, killed.stderr
            # `repro open` on the torn WAL recovers without error and
            # reports exactly what recovery did.
            opened = self._run(
                ["-m", "repro.cli", "open", store_dir], kernel, check=True
            )
            assert "wal.recovered_batches:  1" in opened.stdout
            assert "wal.torn_tail_bytes:    13" in opened.stdout
            assert "triples (dataset):  5" in opened.stdout
            verified = self._run(
                ["-c", _REOPEN_VERIFIER, store_dir, str(full), str(query)],
                kernel,
            )
            assert verified.returncode == 0, verified.stderr
            assert "known-artist" in verified.stdout
            outputs[kernel] = verified.stdout
        # Byte-identical closure + answers across all three kernels.
        assert outputs["arrays"] == outputs["encoded"] == outputs["boxed"]


# ---------------------------------------------------------------------------
# Spill cleanup (satellite: RunPool exception paths)
# ---------------------------------------------------------------------------


class TestSpillCleanup:
    ROWS = [[(i, j, j) for j in range(64)] for i in range(8)]

    def test_failed_spill_keeps_run_and_removes_partial_file(self, tmp_path):
        pool = RunPool(max_bytes=1, tmp_dir=str(tmp_path))
        FAULTS.arm("ingest.spill.write", on_hit=3)
        with pytest.raises(InjectedFault):
            for run in self.ROWS:
                pool.add(sorted(run))
        FAULTS.reset()
        spill_dir = pool._dir
        assert spill_dir is not None
        files = sorted(os.listdir(spill_dir))
        assert len(files) == pool.spills == 2
        # No partial file for the failed third spill, and no data loss:
        # the merge still sees every row ever added.
        added = {r for run in self.ROWS[: self._runs_added(pool)] for r in run}
        assert set(pool.merge()) == added
        pool.close()
        assert not os.path.exists(spill_dir)

    @staticmethod
    def _runs_added(pool):
        return len(pool._runs) + len(pool._spilled)

    def test_interrupt_mid_spill_is_clean(self, tmp_path):
        pool = RunPool(max_bytes=1, tmp_dir=str(tmp_path))
        FAULTS.arm("ingest.spill.write", on_hit=2, exc=KeyboardInterrupt)
        pool.add(sorted(self.ROWS[0]))
        with pytest.raises(KeyboardInterrupt):
            pool.add(sorted(self.ROWS[1]))
        FAULTS.reset()
        assert pool.spills == 1
        assert len(os.listdir(pool._dir)) == 1
        assert set(pool.merge()) == set(self.ROWS[0]) | set(self.ROWS[1])
        pool.close()
