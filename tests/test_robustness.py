"""Robustness suite: budgets, degraded answers, and fault injection.

Three layers of guarantees are exercised here:

* **Guards** — deadlines, step budgets, result caps and cancellation
  tokens fire when exceeded and stay invisible when unlimited
  (a default `Budget()` must reproduce unguarded answers exactly).
* **Degraded answers** — the ``*_within`` predicates return
  three-valued :class:`TriState` answers whose UNKNOWN branch carries
  the partial evidence the search had established.
* **Exception safety** — a fault injected at *every* named site of the
  store/engine/closure write path (including ``KeyboardInterrupt``)
  leaves the store equal to the pre-op or post-op state of a
  from-scratch reference, with the closure consistent; a Hypothesis
  stateful machine replays random op streams with random faults.
"""

import os

import pytest
from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, invariant, rule

from repro.core import RDFGraph, Triple, URI
from repro.core.terms import BNode
from repro.core.vocabulary import SC, SP, TYPE
from repro.generators import random_digraph
from repro.reductions import DiGraph, encode_graph
from repro.robustness import (
    FAULTS,
    SITES,
    Budget,
    CancellationToken,
    DeadlineExceeded,
    InjectedFault,
    OperationCancelled,
    ResultBudgetExceeded,
    StepBudgetExceeded,
    TriState,
    core_within,
    current_guard,
    entails_within,
    guarded,
    is_lean_within,
)
from repro.semantics import entails, rdfs_closure, simple_entails
from repro.store import TripleStore


@pytest.fixture(autouse=True)
def _clean_faults():
    """No test leaks an armed fault site into the next."""
    yield
    FAULTS.reset()


# ---------------------------------------------------------------------------
# Guard mechanics
# ---------------------------------------------------------------------------


class TestExecutionGuard:
    def test_deadline_fires(self):
        with guarded(Budget(deadline_ms=5), stride=16) as g:
            with pytest.raises(DeadlineExceeded):
                while True:
                    g.tick()
        assert g.tripped == "deadline"

    def test_step_budget_trips_exactly_past_the_limit(self):
        with guarded(Budget(max_steps=100)) as g:
            with pytest.raises(StepBudgetExceeded):
                for _ in range(1000):
                    g.tick()
        # Strictly-greater semantics: 100 steps are allowed, the 101st
        # trips, and the guard schedules its own exact check boundary
        # so amortization never overshoots.
        assert g.steps == 101
        assert g.tripped == "steps"

    def test_bulk_tick_respects_budget(self):
        with guarded(Budget(max_steps=100)) as g:
            g.tick(60)
            with pytest.raises(StepBudgetExceeded):
                g.tick(60)
        assert g.steps == 120

    def test_result_cap(self):
        with guarded(Budget(max_results=3)) as g:
            with pytest.raises(ResultBudgetExceeded):
                for _ in range(10):
                    g.note_result()
        assert g.results == 4

    def test_cancellation_token(self):
        token = CancellationToken()
        with guarded(Budget(token=token), stride=4) as g:
            g.tick()
            token.cancel()
            with pytest.raises(OperationCancelled):
                for _ in range(100):
                    g.tick()
        assert g.tripped == "cancelled"

    def test_unlimited_budget_never_trips(self):
        with guarded(Budget.unlimited()) as g:
            for _ in range(10_000):
                g.tick()
            g.note_result(10_000)
        assert g.tripped is None
        assert g.steps == 10_000

    def test_ambient_guard_nests_and_unwinds(self):
        assert current_guard() is None
        with guarded(Budget(max_steps=5)) as outer:
            assert current_guard() is outer
            with guarded() as inner:
                assert current_guard() is inner
            assert current_guard() is outer
        assert current_guard() is None

    def test_guard_pops_even_on_trip(self):
        with pytest.raises(StepBudgetExceeded):
            with guarded(Budget(max_steps=0)) as g:
                g.tick()
        assert current_guard() is None

    def test_budget_describe(self):
        assert Budget().describe() == "unlimited"
        assert Budget().is_unlimited
        b = Budget(deadline_ms=10, max_steps=50)
        assert not b.is_unlimited
        assert "deadline=10ms" in b.describe()
        assert "max_steps=50" in b.describe()


# ---------------------------------------------------------------------------
# Degraded three-valued answers
# ---------------------------------------------------------------------------


def _triple(s, p, o):
    return Triple(URI(s), URI(p) if isinstance(p, str) else p, URI(o))


_BX = BNode("x")


def _taxonomy():
    return RDFGraph(
        [
            _triple("painter", SC, "artist"),
            _triple("artist", SC, "person"),
            _triple("frida", TYPE, "painter"),
        ]
    )


def _hard_instance(n=40, seed=2):
    """A near-threshold 3-coloring pattern: ~2 s of unguarded search."""
    inst = random_digraph(n, int(2.3 * n), seed=seed).symmetrized()
    return encode_graph(DiGraph.complete(3)), encode_graph(inst)


class TestTriState:
    def test_bool_of_unknown_raises(self):
        answer = TriState("UNKNOWN", reason="deadline")
        with pytest.raises(ValueError):
            bool(answer)
        assert answer.unknown and not answer.known

    def test_bool_of_decided(self):
        assert bool(TriState("PROVED"))
        assert not bool(TriState("REFUTED"))


class TestDegradedAnswers:
    def test_unlimited_budget_matches_unguarded_entailment(self):
        g = _taxonomy()
        goal = RDFGraph([_triple("frida", TYPE, "person")])
        bad = RDFGraph([_triple("frida", TYPE, "sculptor")])
        for conclusion in (goal, bad):
            for simple in (False, True):
                reference = (
                    simple_entails(g, conclusion)
                    if simple
                    else entails(g, conclusion)
                )
                answer = entails_within(
                    g, conclusion, Budget(), simple=simple
                )
                assert answer.known
                assert bool(answer) == reference

    def test_step_budget_trip_returns_unknown_with_evidence(self):
        k3, pattern = _hard_instance()
        answer = entails_within(
            k3, pattern, Budget(max_steps=50), simple=True
        )
        assert answer.unknown
        assert answer.reason == "steps"
        assert answer.evidence["steps"] > 50
        assert "elapsed_ms" in answer.evidence
        assert "message" in answer.evidence

    def test_is_lean_within_refuted_carries_witness(self):
        non_lean = RDFGraph(
            [_triple("a", "p", "b"), Triple(URI("a"), URI("p"), _BX)]
        )
        answer = is_lean_within(non_lean, Budget())
        assert answer.refuted
        witness = answer.evidence["witness"]
        assert witness.apply_graph(non_lean) < non_lean

    def test_is_lean_within_proved_on_lean_graph(self):
        assert is_lean_within(_taxonomy(), Budget()).proved

    def test_core_within_proved_carries_core_and_retraction(self):
        non_lean = RDFGraph(
            [_triple("a", "p", "b"), Triple(URI("a"), URI("p"), _BX)]
        )
        answer = core_within(non_lean, Budget())
        assert answer.proved
        assert answer.evidence["graph"] == RDFGraph([_triple("a", "p", "b")])
        assert answer.evidence["iterations"] == 1
        retraction = answer.evidence["retraction"]
        assert retraction.apply_graph(non_lean) == answer.evidence["graph"]

    def test_core_within_unknown_reports_partial_graph(self):
        non_lean = RDFGraph(
            [_triple("a", "p", "b"), Triple(URI("a"), URI("p"), _BX)]
        )
        answer = core_within(non_lean, Budget(max_steps=0))
        assert answer.unknown
        assert answer.reason == "steps"
        # Every intermediate graph is still equivalent to the input
        # (Theorem 3.10's invariant) — here the search died before the
        # first shrink, so the partial answer is the input itself.
        assert answer.evidence["graph"] == non_lean
        assert answer.evidence["iterations"] == 0

    def test_guard_metrics_reported(self):
        from repro import obs

        k3, pattern = _hard_instance()
        with obs.instrumentation() as (registry, _tracer):
            answer = entails_within(
                k3, pattern, Budget(max_steps=50), simple=True
            )
        assert answer.unknown
        assert registry.counter("guard.trips.steps") == 1
        assert registry.counter("guard.degraded_answers") == 1
        assert registry.counter("guard.checks") >= 1
        assert registry.counter("guard.steps") > 50


class TestAdversarialDeadline:
    def test_ten_ms_deadline_answers_unknown_well_under_two_x(self):
        import time

        k3, pattern = _hard_instance()  # ~2 s unguarded
        t0 = time.perf_counter()
        answer = entails_within(
            k3, pattern, Budget(deadline_ms=10), simple=True
        )
        wall_ms = (time.perf_counter() - t0) * 1e3
        assert answer.unknown
        assert answer.reason == "deadline"
        assert wall_ms < 20, f"deadline overshot: {wall_ms:.1f} ms"
        assert answer.evidence["steps"] > 0


# ---------------------------------------------------------------------------
# Fault injection: every site leaves a consistent store
# ---------------------------------------------------------------------------


def _seed_triples():
    return [
        _triple("painter", SC, "artist"),
        _triple("artist", SC, "person"),
        _triple("paints", SP, "creates"),
        _triple("frida", TYPE, "painter"),
        _triple("frida", "paints", "portrait"),
    ]


_NEW = _triple("diego", TYPE, "painter")


def _setup_plain(store):
    store.add_all(_seed_triples())


def _setup_materialized(store):
    store.add_all(_seed_triples())
    store.closure()


def _setup_named(store):
    store.add_all(_seed_triples(), graph="g")


def _op_add(store):
    store.add(_NEW)


def _op_add_all(store):
    store.add_all([_NEW, _triple("diego", "paints", "mural")])


def _op_remove(store):
    store.remove(_seed_triples()[0])


def _op_clear(store):
    store.clear("g")


def _op_commit(store):
    store.begin()
    store.add(_NEW)
    store.commit()


def _op_closure(store):
    store.closure()


#: site -> (on_hit, setup, op).  Every store-reachable injection site,
#: with an operation stream that provably executes it (asserted via the
#: injector's hit tally).
_SCENARIOS = {
    "store.add.apply": (1, _setup_plain, _op_add),
    "store.add_all.batch": (2, _setup_plain, _op_add_all),
    "store.remove.apply": (1, _setup_plain, _op_remove),
    "store.clear.graph": (2, _setup_named, _op_clear),
    "store.commit": (1, _setup_plain, _op_commit),
    "store.flush.begin": (1, _setup_materialized, _op_add),
    "store.flush.extend": (1, _setup_materialized, _op_add),
    "store.flush.retract": (1, _setup_materialized, _op_remove),
    "store.materialize": (1, _setup_plain, _op_closure),
    "engine.round": (1, _setup_plain, _op_closure),
    "engine.dred.overdelete": (1, _setup_materialized, _op_remove),
    "engine.dred.rederive": (1, _setup_materialized, _op_remove),
}


def test_every_site_has_a_scenario_or_its_own_test():
    # closure.round lives in the staged-closure kernel (rdfs_closure),
    # not on the store write path; it has a dedicated test below.
    # The durable.* I/O sites and ingest.spill.write are exercised by
    # the crash–reopen suite in test_durability.py and the spill
    # cleanup test in test_ingest.py / test_durability.py.
    own_tests = {
        "closure.round",
        "durable.wal.post_write",
        "durable.wal.pre_fsync",
        "durable.terms.post_write",
        "durable.terms.pre_fsync",
        "durable.checkpoint.mid_compaction",
        "durable.checkpoint.pre_rename",
        "ingest.spill.write",
    }
    assert set(_SCENARIOS) | own_tests == set(SITES)


def _replay_references(setup, op):
    """The pre-op and post-op datasets a fault-free run produces."""
    pre = TripleStore()
    setup(pre)
    post = TripleStore()
    setup(post)
    op(post)
    return pre.dataset(), post.dataset()


@pytest.mark.parametrize("site", sorted(_SCENARIOS))
def test_injected_fault_leaves_store_consistent(site):
    on_hit, setup, op = _SCENARIOS[site]
    pre_dataset, post_dataset = _replay_references(setup, op)
    store = TripleStore()
    setup(store)
    FAULTS.arm(site, on_hit=on_hit)
    try:
        with pytest.raises(InjectedFault):
            op(store)
        hits = FAULTS.hits.get(site, 0)
    finally:
        FAULTS.reset()
    assert hits >= on_hit, f"scenario never reached {site}"
    dataset = store.dataset()
    assert dataset in (pre_dataset, post_dataset)
    # The materialized closure must agree with a from-scratch closure
    # of whatever dataset survived — i.e. the store stays fully usable.
    assert store.closure() == rdfs_closure(dataset)


@pytest.mark.parametrize(
    "site, on_hit, setup, op",
    [
        ("store.add_all.batch", 2, _setup_plain, _op_add_all),
        ("store.flush.extend", 1, _setup_materialized, _op_add),
    ],
)
def test_keyboard_interrupt_is_recovered(site, on_hit, setup, op):
    """Ctrl-C mid-batch / mid-maintenance must not corrupt the store."""
    pre_dataset, post_dataset = _replay_references(setup, op)
    store = TripleStore()
    setup(store)
    FAULTS.arm(site, on_hit=on_hit, exc=KeyboardInterrupt)
    try:
        with pytest.raises(KeyboardInterrupt):
            op(store)
    finally:
        FAULTS.reset()
    dataset = store.dataset()
    assert dataset in (pre_dataset, post_dataset)
    assert store.closure() == rdfs_closure(dataset)


def test_add_all_is_atomic_on_invalid_triple():
    """A plain ValueError mid-batch rolls the whole batch back too."""
    store = TripleStore()
    store.add_all(_seed_triples())
    pre = store.dataset()
    from repro.core.terms import Literal

    bad_batch = [_NEW, Triple(Literal("lit"), URI("p"), URI("o"))]
    with pytest.raises(ValueError):
        store.add_all(bad_batch)
    assert store.dataset() == pre
    assert store.closure() == rdfs_closure(pre)


def test_recovered_ops_counter_bumps_once():
    store = TripleStore()
    store.add_all(_seed_triples())
    assert store.metrics.counter("store.recovered_ops") == 0
    FAULTS.arm("store.add.apply")
    try:
        with pytest.raises(InjectedFault):
            store.add(_NEW)
    finally:
        FAULTS.reset()
    assert store.metrics.counter("store.recovered_ops") == 1


def test_closure_round_fault_propagates_and_retries_clean():
    graph = RDFGraph(_seed_triples())
    FAULTS.arm("closure.round")
    try:
        with pytest.raises(InjectedFault):
            rdfs_closure(graph)
    finally:
        FAULTS.reset()
    # rdfs_closure is a pure function: nothing to recover, and a retry
    # must succeed from scratch.
    closed = rdfs_closure(graph)
    assert _triple("frida", TYPE, "person") in closed

def test_unknown_site_fails_loudly():
    with pytest.raises(ValueError):
        FAULTS.arm("store.no_such_site")


# ---------------------------------------------------------------------------
# Stateful chaos: random op streams with random faults
# ---------------------------------------------------------------------------

_NODES = [URI(n) for n in ("a", "b", "c", "d")]
_PREDICATES = [URI("p"), SC, SP, TYPE]

triples_strategy = st.builds(
    Triple,
    st.sampled_from(_NODES),
    st.sampled_from(_PREDICATES),
    st.sampled_from(_NODES),
)

_WRITE_SITES = (
    "store.add.apply",
    "store.add_all.batch",
    "store.flush.begin",
    "store.flush.extend",
    "store.materialize",
    "engine.round",
)
_REMOVE_SITES = (
    "store.remove.apply",
    "store.flush.begin",
    "store.flush.retract",
    "engine.dred.overdelete",
    "engine.dred.rederive",
)


class FaultyStoreMachine(RuleBasedStateMachine):
    """Random ops with randomly armed fault sites against a model.

    After a fault the store must equal either the pre-op model or the
    post-op model (apply-phase failures roll back; maintenance-phase
    failures keep the applied data and drop derived state) — the
    machine adopts whichever one the store proves to be, then the
    invariants re-verify dataset and closure from scratch.
    """

    def __init__(self):
        super().__init__()
        self.store = TripleStore()
        self.model = set()

    def _run_faulted(self, op, site, on_hit, post):
        pre = set(self.model)
        FAULTS.arm(site, on_hit=on_hit)
        try:
            op()
            self.model = post
        except InjectedFault:
            dataset = self.store.dataset()
            assert dataset in (RDFGraph(pre), RDFGraph(post))
            self.model = post if dataset == RDFGraph(post) else pre
        finally:
            FAULTS.reset()

    @rule(t=triples_strategy)
    def add(self, t):
        self.store.add(t)
        self.model.add(t)

    @rule(t=triples_strategy)
    def remove(self, t):
        self.store.remove(t)
        self.model.discard(t)

    @rule()
    def materialize(self):
        self.store.closure()

    @rule(
        ts=st.lists(triples_strategy, min_size=1, max_size=4),
        site=st.sampled_from(_WRITE_SITES),
        on_hit=st.integers(min_value=1, max_value=3),
    )
    def faulted_add_all(self, ts, site, on_hit):
        self._run_faulted(
            lambda: self.store.add_all(ts),
            site,
            on_hit,
            self.model | set(ts),
        )

    @rule(
        t=triples_strategy,
        site=st.sampled_from(_REMOVE_SITES),
        on_hit=st.integers(min_value=1, max_value=2),
    )
    def faulted_remove(self, t, site, on_hit):
        self._run_faulted(
            lambda: self.store.remove(t),
            site,
            on_hit,
            self.model - {t},
        )

    @invariant()
    def dataset_matches_model(self):
        assert self.store.dataset() == RDFGraph(self.model)

    @invariant()
    def closure_matches_reference(self):
        assert self.store.closure() == rdfs_closure(RDFGraph(self.model))


FaultyStoreMachine.TestCase.settings = settings(
    max_examples=40 if os.environ.get("REPRO_CHAOS") else 15,
    stateful_step_count=12,
    deadline=None,
)
TestFaultyStoreStateful = FaultyStoreMachine.TestCase


# ---------------------------------------------------------------------------
# Tolerant N-Triples parsing
# ---------------------------------------------------------------------------


class TestTolerantParse:
    GOOD_AND_BAD = (
        "a p b .\n"
        "this line has five tokens .\n"
        '"literal" p o .\n'
        "# a comment\n"
        "c q d .\n"
    )

    def test_strict_raises_on_first_bad_line(self):
        from repro.rdfio.ntriples import ParseError, parse_ntriples

        with pytest.raises(ParseError) as exc:
            parse_ntriples(self.GOOD_AND_BAD)
        assert exc.value.line_number == 2

    def test_tolerant_returns_report_with_issues(self):
        from repro.rdfio.ntriples import parse_ntriples

        report = parse_ntriples(self.GOOD_AND_BAD, strict=False)
        assert not report.ok
        assert report.graph == RDFGraph(
            [_triple("a", "p", "b"), _triple("c", "q", "d")]
        )
        assert [issue.line_number for issue in report.errors] == [2, 3]
        reasons = [issue.reason for issue in report.errors]
        assert "expected 3 terms" in reasons[0]
        assert "ill-formed triple" in reasons[1]

    def test_tolerant_on_clean_input_is_ok(self):
        from repro.rdfio.ntriples import parse_ntriples, serialize_ntriples

        graph = RDFGraph(_seed_triples())
        report = parse_ntriples(serialize_ntriples(graph), strict=False)
        assert report.ok
        assert report.errors == ()
        assert report.graph == graph


# ---------------------------------------------------------------------------
# CLI budget flags
# ---------------------------------------------------------------------------


DATA_NT = "painter sc artist .\nPicasso type painter .\n"
GOAL_NT = "Picasso type artist .\n"
QUERY_RQ = "CONSTRUCT { ?X status known . }\nWHERE { ?X type artist . }\n"


@pytest.fixture
def cli_files(tmp_path):
    paths = {}
    for name, content in [
        ("data.nt", DATA_NT),
        ("goal.nt", GOAL_NT),
        ("q.rq", QUERY_RQ),
    ]:
        p = tmp_path / name
        p.write_text(content)
        paths[name] = str(p)
    return paths


def _run_cli(argv):
    import io

    from repro.cli import main

    out = io.StringIO()
    code = main(argv, out=out)
    return code, out.getvalue()


class TestCLIBudgets:
    def test_entails_without_flags_is_unchanged(self, cli_files):
        code, text = _run_cli(
            ["entails", cli_files["data.nt"], cli_files["goal.nt"]]
        )
        assert code == 0
        assert "entailed" in text

    def test_entails_zero_step_budget_answers_unknown(self, cli_files):
        code, text = _run_cli(
            [
                "entails",
                cli_files["data.nt"],
                cli_files["goal.nt"],
                "--max-steps",
                "0",
            ]
        )
        assert code == 3
        assert text.startswith("unknown")
        assert "steps" in text

    def test_entails_generous_budget_still_decides(self, cli_files):
        code, text = _run_cli(
            [
                "entails",
                cli_files["data.nt"],
                cli_files["goal.nt"],
                "--timeout-ms",
                "60000",
                "--max-steps",
                "1000000",
            ]
        )
        assert code == 0
        assert "entailed" in text

    def test_query_zero_step_budget_answers_unknown(self, cli_files):
        code, text = _run_cli(
            [
                "query",
                cli_files["q.rq"],
                cli_files["data.nt"],
                "--max-steps",
                "0",
            ]
        )
        assert code == 3
        assert "# unknown" in text

    def test_explain_zero_step_budget_answers_unknown(self, cli_files):
        code, text = _run_cli(
            [
                "explain",
                "entails",
                cli_files["data.nt"],
                cli_files["goal.nt"],
                "--max-steps",
                "0",
            ]
        )
        assert code == 3
        assert "unknown" in text
