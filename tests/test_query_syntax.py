"""Tests for the CONSTRUCT/WHERE query surface syntax."""

import pytest

from repro.core import BNode, Literal, RDFGraph, URI, Variable, triple
from repro.query import answer_union
from repro.rdfio.query_syntax import QuerySyntaxError, parse_query, serialize_query


BASIC = """
CONSTRUCT { ?A creates ?Y . }
WHERE { ?A type Flemish . ?A paints ?Y . }
"""


class TestParsing:
    def test_basic(self):
        q = parse_query(BASIC)
        assert q.head.variables() == {Variable("A"), Variable("Y")}
        assert len(list(q.body)) == 2
        assert len(q.premise) == 0
        assert q.constraints == frozenset()

    def test_premise_section(self):
        q = parse_query(
            BASIC + "PREMISE { son sp relative . }"
        )
        assert triple("son", "sp", "relative") in q.premise

    def test_bound_section(self):
        q = parse_query(BASIC + "BOUND ?A")
        assert q.constraints == {Variable("A")}

    def test_bound_multiple_with_commas(self):
        q = parse_query(BASIC + "BOUND ?A, ?Y")
        assert q.constraints == {Variable("A"), Variable("Y")}

    def test_blank_node_in_head(self):
        q = parse_query(
            "CONSTRUCT { _:N knows ?X . } WHERE { ?X p b . }"
        )
        assert BNode("N") in q.head.bnodes()

    def test_literals(self):
        q = parse_query(
            'CONSTRUCT { ?D offers-db yes . } WHERE { ?D offers "DB" . }'
        )
        assert any(t.o == Literal("DB") for t in q.body)

    def test_angle_uris(self):
        q = parse_query(
            "CONSTRUCT { ?X <http://x/p2> c . } WHERE { ?X <http://x/p> b . }"
        )
        assert any(t.p == URI("http://x/p") for t in q.body)

    def test_comments_stripped(self):
        q = parse_query(
            "# header comment\n" + BASIC + "# trailing comment"
        )
        assert len(list(q.body)) == 2

    def test_hash_inside_literal_preserved(self):
        q = parse_query(
            'CONSTRUCT { ?X tag "#1" . } WHERE { ?X p b . }'
        )
        assert any(t.o == Literal("#1") for t in q.head)

    def test_case_insensitive_keywords(self):
        q = parse_query("construct { ?X p2 c . } where { ?X p b . }")
        assert len(list(q.body)) == 1

    def test_optional_final_dot(self):
        q = parse_query("CONSTRUCT { ?X p2 c } WHERE { ?X p b }")
        assert len(list(q.body)) == 1


class TestErrors:
    def test_missing_where(self):
        with pytest.raises(QuerySyntaxError):
            parse_query("CONSTRUCT { ?X p b . }")

    def test_missing_construct(self):
        with pytest.raises(QuerySyntaxError):
            parse_query("WHERE { ?X p b . }")

    def test_duplicate_section(self):
        with pytest.raises(QuerySyntaxError):
            parse_query(BASIC + "WHERE { ?A q c . }")

    def test_wrong_arity(self):
        with pytest.raises(QuerySyntaxError):
            parse_query("CONSTRUCT { ?X p . } WHERE { ?X p b . }")

    def test_blank_in_body_rejected(self):
        with pytest.raises(QuerySyntaxError):
            parse_query("CONSTRUCT { a p b . } WHERE { _:N p b . }")

    def test_head_variable_not_in_body(self):
        with pytest.raises(QuerySyntaxError):
            parse_query("CONSTRUCT { ?Z p b . } WHERE { ?X p b . }")

    def test_variables_in_premise_rejected(self):
        with pytest.raises(QuerySyntaxError):
            parse_query(BASIC + "PREMISE { ?X sp relative . }")

    def test_bound_non_variable(self):
        with pytest.raises(QuerySyntaxError):
            parse_query(BASIC + "BOUND A")

    def test_missing_braces(self):
        with pytest.raises(QuerySyntaxError):
            parse_query("CONSTRUCT ?X p b . WHERE { ?X p b . }")

    def test_garbage(self):
        with pytest.raises(QuerySyntaxError):
            parse_query("SELECT * FROM t")


class TestRoundTrip:
    CASES = [
        BASIC,
        BASIC + "PREMISE { a t s . b t s . }",
        BASIC + "BOUND ?A",
        'CONSTRUCT { _:N made ?Y . } WHERE { ?X paints ?Y . ?Y cost "10" . }',
    ]

    @pytest.mark.parametrize("case", CASES)
    def test_roundtrip(self, case):
        q = parse_query(case)
        assert parse_query(serialize_query(q)) == q


class TestEndToEnd:
    def test_parsed_query_runs(self):
        q = parse_query(
            """
            CONSTRUCT { ?X relative Peter . }
            WHERE { ?X relative Peter . }
            PREMISE { son sp relative . }
            """
        )
        d = RDFGraph([triple("john", "son", "Peter")])
        assert answer_union(q, d) == RDFGraph([triple("john", "relative", "Peter")])
