"""Tests for the CONSTRUCT/WHERE query surface syntax."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as hst

from repro.core import BNode, Literal, RDFGraph, Triple, URI, Variable, triple
from repro.query import answer_union, head_body_query
from repro.rdfio.query_syntax import QuerySyntaxError, parse_query, serialize_query


BASIC = """
CONSTRUCT { ?A creates ?Y . }
WHERE { ?A type Flemish . ?A paints ?Y . }
"""


class TestParsing:
    def test_basic(self):
        q = parse_query(BASIC)
        assert q.head.variables() == {Variable("A"), Variable("Y")}
        assert len(list(q.body)) == 2
        assert len(q.premise) == 0
        assert q.constraints == frozenset()

    def test_premise_section(self):
        q = parse_query(
            BASIC + "PREMISE { son sp relative . }"
        )
        assert triple("son", "sp", "relative") in q.premise

    def test_bound_section(self):
        q = parse_query(BASIC + "BOUND ?A")
        assert q.constraints == {Variable("A")}

    def test_bound_multiple_with_commas(self):
        q = parse_query(BASIC + "BOUND ?A, ?Y")
        assert q.constraints == {Variable("A"), Variable("Y")}

    def test_blank_node_in_head(self):
        q = parse_query(
            "CONSTRUCT { _:N knows ?X . } WHERE { ?X p b . }"
        )
        assert BNode("N") in q.head.bnodes()

    def test_literals(self):
        q = parse_query(
            'CONSTRUCT { ?D offers-db yes . } WHERE { ?D offers "DB" . }'
        )
        assert any(t.o == Literal("DB") for t in q.body)

    def test_angle_uris(self):
        q = parse_query(
            "CONSTRUCT { ?X <http://x/p2> c . } WHERE { ?X <http://x/p> b . }"
        )
        assert any(t.p == URI("http://x/p") for t in q.body)

    def test_comments_stripped(self):
        q = parse_query(
            "# header comment\n" + BASIC + "# trailing comment"
        )
        assert len(list(q.body)) == 2

    def test_hash_inside_literal_preserved(self):
        q = parse_query(
            'CONSTRUCT { ?X tag "#1" . } WHERE { ?X p b . }'
        )
        assert any(t.o == Literal("#1") for t in q.head)

    def test_case_insensitive_keywords(self):
        q = parse_query("construct { ?X p2 c . } where { ?X p b . }")
        assert len(list(q.body)) == 1

    def test_optional_final_dot(self):
        q = parse_query("CONSTRUCT { ?X p2 c } WHERE { ?X p b }")
        assert len(list(q.body)) == 1


class TestErrors:
    def test_missing_where(self):
        with pytest.raises(QuerySyntaxError):
            parse_query("CONSTRUCT { ?X p b . }")

    def test_missing_construct(self):
        with pytest.raises(QuerySyntaxError):
            parse_query("WHERE { ?X p b . }")

    def test_duplicate_section(self):
        with pytest.raises(QuerySyntaxError):
            parse_query(BASIC + "WHERE { ?A q c . }")

    def test_wrong_arity(self):
        with pytest.raises(QuerySyntaxError):
            parse_query("CONSTRUCT { ?X p . } WHERE { ?X p b . }")

    def test_blank_in_body_rejected(self):
        with pytest.raises(QuerySyntaxError):
            parse_query("CONSTRUCT { a p b . } WHERE { _:N p b . }")

    def test_head_variable_not_in_body(self):
        with pytest.raises(QuerySyntaxError):
            parse_query("CONSTRUCT { ?Z p b . } WHERE { ?X p b . }")

    def test_variables_in_premise_rejected(self):
        with pytest.raises(QuerySyntaxError):
            parse_query(BASIC + "PREMISE { ?X sp relative . }")

    def test_bound_non_variable(self):
        with pytest.raises(QuerySyntaxError):
            parse_query(BASIC + "BOUND A")

    def test_missing_braces(self):
        with pytest.raises(QuerySyntaxError):
            parse_query("CONSTRUCT ?X p b . WHERE { ?X p b . }")

    def test_garbage(self):
        with pytest.raises(QuerySyntaxError):
            parse_query("SELECT * FROM t")


class TestRoundTrip:
    CASES = [
        BASIC,
        BASIC + "PREMISE { a t s . b t s . }",
        BASIC + "BOUND ?A",
        'CONSTRUCT { _:N made ?Y . } WHERE { ?X paints ?Y . ?Y cost "10" . }',
    ]

    @pytest.mark.parametrize("case", CASES)
    def test_roundtrip(self, case):
        q = parse_query(case)
        assert parse_query(serialize_query(q)) == q


class TestPrefixes:
    def test_prefix_expansion(self):
        q = parse_query(
            """
            PREFIX ex: <http://ex.org/ns#>
            CONSTRUCT { ?X ex:made ?Y . }
            WHERE { ?X ex:paints ?Y . }
            """
        )
        assert any(t.p == URI("http://ex.org/ns#paints") for t in q.body)
        assert any(t.p == URI("http://ex.org/ns#made") for t in q.head)

    def test_default_prefix(self):
        q = parse_query(
            "PREFIX : <urn:default#>\n"
            "CONSTRUCT { ?X :p c . } WHERE { ?X :p b . }"
        )
        assert any(t.p == URI("urn:default#p") for t in q.body)

    def test_last_declaration_wins(self):
        q = parse_query(
            "PREFIX ex: <urn:one#>\n"
            "PREFIX ex: <urn:two#>\n"
            "CONSTRUCT { a ex:p b . } WHERE { a ex:p b . }"
        )
        assert any(t.p == URI("urn:two#p") for t in q.body)

    def test_undeclared_colon_name_stays_plain(self):
        q = parse_query(
            "PREFIX ex: <urn:one#>\n"
            "CONSTRUCT { a urn:x b . } WHERE { a urn:x b . }"
        )
        assert any(t.p == URI("urn:x") for t in q.body)

    def test_declaration_survives_comments(self):
        # '#' inside the angle IRI of a declaration is not a comment.
        q = parse_query(
            "# file header\n"
            "PREFIX ex: <urn:ns#>  # trailing comment\n"
            "CONSTRUCT { a ex:t b . } WHERE { a ex:t b . }"
        )
        assert any(t.p == URI("urn:ns#t") for t in q.body)

    def test_expanded_query_roundtrips(self):
        q = parse_query(
            "PREFIX ex: <urn:ns#>\n"
            "CONSTRUCT { ?X ex:made ?Y . } WHERE { ?X ex:paints ?Y . }"
        )
        # serialize emits full (angle-quoted where needed) URIs; the
        # prefix-free rendition parses back to the same query.
        assert parse_query(serialize_query(q)) == q


# Term pools for the generative round-trip property.  Everything here is
# serializable by design: URIs avoid whitespace/quotes/braces/'?' (the
# bare-name token alphabet), while '#', ':' and the reserved
# ``urn:frozen-var:`` namespace are fair game.
_RT_URIS = [
    URI(v)
    for v in [
        "a",
        "b",
        "p",
        "urn:x",
        "urn:frozen-var:X",
        "http://ex.org/ns#term",
        "urn:default#type",
        "rel-1",
        "x.y",
    ]
]
_RT_LITERALS = [
    Literal(v)
    for v in ["plain", 'with "quote"', "line\nbreak", "tab\there", "#1", "a\\b"]
]
_RT_BNODES = [BNode(v) for v in ["N", "n1", "x.y", "a-b"]]
_RT_VARS = [Variable(v) for v in ["A", "B", "C"]]


@hst.composite
def surface_queries(draw):
    """Queries exercising head blanks, premises, and BOUND sets."""
    var = hst.sampled_from(_RT_VARS)
    uri = hst.sampled_from(_RT_URIS)
    lit = hst.sampled_from(_RT_LITERALS)
    blank = hst.sampled_from(_RT_BNODES)
    body = [
        Triple(
            draw(hst.one_of(var, uri)),
            draw(hst.one_of(var, uri)),
            draw(hst.one_of(var, uri, lit)),
        )
        for _ in range(draw(hst.integers(min_value=1, max_value=3)))
    ]
    body_vars = sorted(
        {x for t in body for x in t.variables()}, key=lambda v: v.value
    )
    head_subject = hst.one_of(uri, blank)
    head_predicate = uri
    head_object = hst.one_of(uri, blank, lit)
    if body_vars:
        bound = hst.sampled_from(body_vars)
        head_subject = hst.one_of(head_subject, bound)
        head_predicate = hst.one_of(head_predicate, bound)
        head_object = hst.one_of(head_object, bound)
    head = [
        Triple(draw(head_subject), draw(head_predicate), draw(head_object))
        for _ in range(draw(hst.integers(min_value=1, max_value=2)))
    ]
    premise = RDFGraph(
        Triple(
            draw(hst.one_of(uri, blank)),
            draw(uri),
            draw(hst.one_of(uri, blank, lit)),
        )
        for _ in range(draw(hst.integers(min_value=0, max_value=2)))
    )
    head_vars = sorted(
        {x for t in head for x in t.variables()}, key=lambda v: v.value
    )
    constraints = (
        draw(hst.sets(hst.sampled_from(head_vars), max_size=len(head_vars)))
        if head_vars
        else frozenset()
    )
    return head_body_query(
        head=head, body=body, premise=premise, constraints=constraints
    )


class TestRoundTripProperty:
    @settings(max_examples=200, deadline=None)
    @given(q=surface_queries())
    def test_parse_serialize_roundtrip(self, q):
        assert parse_query(serialize_query(q)) == q


class TestEndToEnd:
    def test_parsed_query_runs(self):
        q = parse_query(
            """
            CONSTRUCT { ?X relative Peter . }
            WHERE { ?X relative Peter . }
            PREMISE { son sp relative . }
            """
        )
        d = RDFGraph([triple("john", "son", "Peter")])
        assert answer_union(q, d) == RDFGraph([triple("john", "relative", "Peter")])
