"""Randomized semantic verification of the containment procedures.

The containment deciders (Theorems 5.5/5.7/5.8) are certificate-based;
these tests check their verdicts against the *definitions* (5.1) on a
panel of randomly generated small queries and databases:

* if the decider says ``q ⊑p q′``, then on every panel database every
  pre-answer of ``q`` must appear (up to ≅) among ``q′``'s;
* if the decider says ``q ⋢m q′``, some panel database should exhibit
  ``ans(q′, D) ⊭ ans(q, D)`` — not guaranteed by a finite panel, so
  the negative direction is only sanity-checked on curated databases
  built from the queries' own frozen bodies (the canonical databases of
  the proofs, which *are* guaranteed witnesses).
"""

import itertools
import random

import pytest

from repro.core import BNode, RDFGraph, Triple, URI, Variable, isomorphic
from repro.query import (
    contained_entailment,
    contained_standard,
    head_body_query,
    pre_answers,
    answer_union,
)
from repro.query.containment import _freeze_pattern
from repro.semantics import entails


def random_query(rng, num_body=2, num_preds=2, num_consts=2):
    """A small random query with a random sub-head."""
    preds = [f"p{i}" for i in range(num_preds)]
    consts = [f"c{i}" for i in range(num_consts)]
    variables = [f"?V{i}" for i in range(3)]

    def term():
        pool = variables + consts
        return rng.choice(pool)

    body = []
    for _ in range(num_body):
        body.append((term(), rng.choice(preds), term()))
    # Head: a random nonempty subset of the body (always well-formed).
    k = rng.randrange(1, len(body) + 1)
    head = rng.sample(body, k)
    return head_body_query(head=head, body=body)


def database_panel(rng, count=4):
    preds = [URI(f"p{i}") for i in range(2)]
    consts = [URI(f"c{i}") for i in range(3)]
    blanks = [BNode("D1"), BNode("D2")]
    panel = []
    for _ in range(count):
        triples = set()
        for _ in range(rng.randrange(2, 6)):
            s = rng.choice(consts + blanks)
            o = rng.choice(consts + blanks)
            triples.add(Triple(s, rng.choice(preds), o))
        panel.append(RDFGraph(triples))
    return panel


class TestStandardContainmentSoundness:
    def test_positive_verdicts_hold_on_panel(self):
        rng = random.Random(77)
        panel = database_panel(rng, count=5)
        checked = 0
        pairs = []
        for _ in range(40):
            # Random pairs, plus constructed positives: a query versus
            # itself with an extra body atom (a specialization, which
            # is always ⊑p the original).
            pairs.append((random_query(rng), random_query(rng)))
            base = random_query(rng)
            extra = list(base.body) + [
                Triple(Variable("V0"), URI("p0"), URI("c0"))
            ]
            specialized = head_body_query(head=list(base.head), body=extra)
            pairs.append((specialized, base))
        for trial, (q1, q2) in enumerate(pairs):
            if not contained_standard(q1, q2):
                continue
            checked += 1
            for d in panel:
                answers1 = pre_answers(q1, d)
                answers2 = pre_answers(q2, d)
                for a in answers1:
                    assert any(isomorphic(a, b) for b in answers2), (
                        f"trial {trial}: ⊑p verdict violated on {d}"
                    )
        assert checked >= 5  # the generator must produce some positives

    def test_self_containment_always(self):
        rng = random.Random(5)
        for _ in range(15):
            q = random_query(rng)
            assert contained_standard(q, q)
            assert contained_entailment(q, q)


class TestEntailmentContainmentSoundness:
    def test_positive_verdicts_hold_on_panel(self):
        rng = random.Random(99)
        panel = database_panel(rng, count=5)
        checked = 0
        for trial in range(40):
            q1 = random_query(rng)
            q2 = random_query(rng)
            if not contained_entailment(q1, q2):
                continue
            checked += 1
            for d in panel:
                a1 = answer_union(q1, d)
                a2 = answer_union(q2, d)
                assert entails(a2, a1), f"trial {trial}: ⊑m violated on {d}"
        assert checked >= 3

    def test_p_implies_m_randomized(self):
        rng = random.Random(13)
        for _ in range(30):
            q1 = random_query(rng)
            q2 = random_query(rng)
            if contained_standard(q1, q2):
                assert contained_entailment(q1, q2)


class TestNegativeVerdictsWitnessed:
    def test_canonical_database_refutes_non_containment(self):
        """⋢m verdicts are witnessed by the frozen-body database.

        The "only if" proofs build ``D_B = v(B)``; on a ⋢m verdict the
        entailment must actually fail there.
        """
        rng = random.Random(21)
        tested = 0
        for _ in range(40):
            q1 = random_query(rng)
            q2 = random_query(rng)
            if contained_entailment(q1, q2):
                continue
            tested += 1
            canonical = _freeze_pattern(q1.body)
            a1 = answer_union(q1, canonical)
            a2 = answer_union(q2, canonical)
            assert not entails(a2, a1), (
                f"decider said ⋢m but the canonical database agrees:\n"
                f"q1={q1}\nq2={q2}"
            )
        assert tested >= 5

    def test_canonical_database_refutes_non_p_containment(self):
        rng = random.Random(31)
        tested = 0
        for _ in range(40):
            q1 = random_query(rng)
            q2 = random_query(rng)
            if contained_standard(q1, q2):
                continue
            tested += 1
            canonical = _freeze_pattern(q1.body)
            answers1 = pre_answers(q1, canonical)
            answers2 = pre_answers(q2, canonical)
            missing = [
                a for a in answers1 if not any(isomorphic(a, b) for b in answers2)
            ]
            assert missing, (
                f"decider said ⋢p but every canonical pre-answer appears:\n"
                f"q1={q1}\nq2={q2}"
            )
        assert tested >= 5
