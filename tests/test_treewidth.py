"""Tests for tree decompositions and bounded-treewidth evaluation."""

import random

import pytest

from repro.generators import blank_chain, random_simple_rdf_graph
from repro.reductions import DiGraph, encode_graph
from repro.relational import (
    Atom,
    CQVariable,
    ConjunctiveQuery,
    Database,
    blank_treewidth_upper_bound,
    evaluate_boolean,
    evaluate_boolean_treewidth,
    primal_graph,
    simple_entails_treewidth,
    tree_decomposition,
    treewidth_upper_bound,
)
from repro.semantics import simple_entails


def V(name):
    return CQVariable(name)


def chain_cq(n):
    return ConjunctiveQuery(
        atoms=tuple(Atom("E", (V(f"v{i}"), V(f"v{i+1}"))) for i in range(n))
    )


def cycle_cq(n):
    return ConjunctiveQuery(
        atoms=tuple(Atom("E", (V(f"v{i}"), V(f"v{(i+1) % n}"))) for i in range(n))
    )


def clique_cq(n):
    atoms = []
    for i in range(n):
        for j in range(n):
            if i != j:
                atoms.append(Atom("E", (V(f"v{i}"), V(f"v{j}"))))
    return ConjunctiveQuery(atoms=tuple(atoms))


class TestDecomposition:
    def test_chain_width_1(self):
        assert treewidth_upper_bound(chain_cq(6)) == 1

    def test_cycle_width_2(self):
        assert treewidth_upper_bound(cycle_cq(6)) == 2

    def test_clique_width_n_minus_1(self):
        assert treewidth_upper_bound(clique_cq(4)) == 3

    def test_decomposition_verifies(self):
        for q in (chain_cq(5), cycle_cq(5), clique_cq(4)):
            td = tree_decomposition(q)
            assert td.verify(q), q

    def test_primal_graph(self):
        q = cycle_cq(4)
        adjacency = primal_graph(q)
        assert all(len(ns) == 2 for ns in adjacency.values())

    def test_single_atom(self):
        q = ConjunctiveQuery(atoms=(Atom("E", (V("x"), V("y"))),))
        td = tree_decomposition(q)
        assert td.width == 1
        assert td.verify(q)

    def test_disconnected_query(self):
        q = ConjunctiveQuery(
            atoms=(Atom("E", (V("a"), V("b"))), Atom("E", (V("c"), V("d"))))
        )
        td = tree_decomposition(q)
        assert td.verify(q)
        assert td.width == 1

    def test_verify_rejects_bad_decomposition(self):
        from repro.relational import TreeDecomposition

        q = chain_cq(3)
        bad = TreeDecomposition(bags=[frozenset({V("v0")})], edges=[])
        assert not bad.verify(q)


class TestEvaluation:
    def make_db(self, seed=5, nodes=6, edges=18):
        rng = random.Random(seed)
        db = Database()
        for _ in range(edges):
            db.add("E", (rng.randrange(nodes), rng.randrange(nodes)))
        return db

    def test_matches_naive_on_chains(self):
        db = self.make_db()
        for n in (2, 3, 5):
            q = chain_cq(n)
            assert evaluate_boolean_treewidth(q, db) == evaluate_boolean(q, db)

    def test_matches_naive_on_cycles(self):
        db = self.make_db()
        for n in (3, 4, 5):
            q = cycle_cq(n)
            assert evaluate_boolean_treewidth(q, db) == evaluate_boolean(q, db), n

    def test_matches_naive_on_cliques(self):
        db = self.make_db(edges=26)
        q = clique_cq(3)
        assert evaluate_boolean_treewidth(q, db) == evaluate_boolean(q, db)

    def test_with_constants(self):
        db = Database()
        db.add("E", (0, 1))
        db.add("E", (1, 2))
        q = ConjunctiveQuery(atoms=(Atom("E", (0, V("x"))), Atom("E", (V("x"), 2))))
        assert evaluate_boolean_treewidth(q, db)
        q2 = ConjunctiveQuery(atoms=(Atom("E", (2, V("x"))),))
        assert not evaluate_boolean_treewidth(q2, db)

    def test_fully_ground_query(self):
        db = Database()
        db.add("E", (0, 1))
        q = ConjunctiveQuery(atoms=(Atom("E", (0, 1)),))
        assert evaluate_boolean_treewidth(q, db)
        q2 = ConjunctiveQuery(atoms=(Atom("E", (1, 0)),))
        assert not evaluate_boolean_treewidth(q2, db)

    def test_random_agreement(self):
        rng = random.Random(11)
        for trial in range(8):
            db = self.make_db(seed=trial)
            shape = rng.choice(["chain", "cycle"])
            n = rng.randrange(2, 5)
            q = chain_cq(n) if shape == "chain" else cycle_cq(max(3, n))
            assert evaluate_boolean_treewidth(q, db) == evaluate_boolean(q, db)


class TestEntailmentBridge:
    def test_blank_chain_width(self):
        assert blank_treewidth_upper_bound(blank_chain(6)) == 1

    def test_triangle_width(self):
        assert blank_treewidth_upper_bound(encode_graph(DiGraph.cycle(3))) == 2

    def test_agrees_with_general_solver(self):
        for seed in range(8):
            g1 = random_simple_rdf_graph(15, 8, seed=seed)
            g2 = random_simple_rdf_graph(4, 3, blank_probability=0.8, seed=seed + 70)
            assert simple_entails_treewidth(g1, g2) == simple_entails(g1, g2), seed

    def test_handles_cyclic_patterns(self):
        # The acyclic pipeline refuses these; treewidth handles them.
        k3 = encode_graph(DiGraph.cycle(3))
        assert simple_entails_treewidth(k3, k3)
        c4 = encode_graph(DiGraph.cycle(4))
        assert not simple_entails_treewidth(c4, k3)


class TestExactTreewidth:
    def test_heuristic_optimal_on_standard_families(self):
        from repro.relational import exact_treewidth

        for q, expected in [
            (chain_cq(4), 1),
            (cycle_cq(5), 2),
            (clique_cq(4), 3),
        ]:
            assert exact_treewidth(q) == expected
            assert treewidth_upper_bound(q) == expected

    def test_upper_bound_never_below_exact(self):
        import random

        from repro.relational import exact_treewidth

        rng = random.Random(3)
        for _ in range(6):
            atoms = []
            n = 5
            for _e in range(7):
                u, v = rng.sample(range(n), 2)
                atoms.append(Atom("E", (V(f"v{u}"), V(f"v{v}"))))
            q = ConjunctiveQuery(atoms=tuple(atoms))
            assert treewidth_upper_bound(q) >= exact_treewidth(q)

    def test_limit_guard(self):
        from repro.relational import exact_treewidth

        with pytest.raises(ValueError):
            exact_treewidth(clique_cq(12), limit=6)

    def test_empty_query(self):
        from repro.relational import exact_treewidth

        assert exact_treewidth(ConjunctiveQuery(atoms=(Atom("E", ("a", "b")),))) == 0
