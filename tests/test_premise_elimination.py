"""Tests for premise elimination (Proposition 5.9, Example 5.10, Prop 5.11)."""

import pytest

from repro.core import BNode, RDFGraph, Variable, isomorphic, triple
from repro.query import (
    answer_union,
    contained_entailment,
    contained_standard,
    head_body_query,
    premise_elimination,
)
from repro.semantics import equivalent


def example_5_10_query():
    return head_body_query(
        head=[("?X", "p", "?Y")],
        body=[("?X", "q", "?Y"), ("?Y", "t", "s")],
        premise=RDFGraph([triple("a", "t", "s"), triple("b", "t", "s")]),
    )


class TestExample510:
    def test_three_queries_produced(self):
        omega = premise_elimination(example_5_10_query())
        rendered = sorted(str(q.tableau) for q in omega)
        assert rendered == [
            "(?X, p, ?Y) ← (?X, q, ?Y), (?Y, t, s)",
            "(?X, p, a) ← (?X, q, a)",
            "(?X, p, b) ← (?X, q, b)",
        ]

    def test_all_premise_free(self):
        for q in premise_elimination(example_5_10_query()):
            assert len(q.premise) == 0

    def test_union_equals_original_answers(self):
        q = example_5_10_query()
        omega = premise_elimination(q)
        databases = [
            RDFGraph([triple("u", "q", "a")]),
            RDFGraph([triple("u", "q", "v"), triple("v", "t", "s")]),
            RDFGraph([triple("u", "q", "b"), triple("w", "q", "a")]),
            RDFGraph([triple("u", "q", "c")]),
        ]
        for d in databases:
            expected = answer_union(q, d)
            combined = RDFGraph()
            for sub in omega:
                combined = combined.union(answer_union(sub, d))
            assert combined == expected, str(d)


class TestOmegaMechanics:
    def test_no_premise_returns_query_itself(self):
        q = head_body_query(head=[("?X", "p", "b")], body=[("?X", "p", "b")])
        assert premise_elimination(q) == [q]

    def test_blank_premise_bindings_excluded_from_body(self):
        # A variable bound to a premise blank may not survive in B − R.
        X = BNode("X")
        q = head_body_query(
            head=[("?Y", "sel", "c")],
            body=[("?Y", "t", "?Z"), ("?Z", "u", "?W")],
            premise=RDFGraph([triple("k", "t", X)]),
        )
        omega = premise_elimination(q)
        for sub in omega:
            for t in sub.body:
                assert not t.bnodes(), f"blank leaked into body: {sub}"

    def test_head_can_receive_premise_blanks(self):
        X = BNode("X")
        q = head_body_query(
            head=[("?Y", "sel", "?Z")],
            body=[("?Y", "t", "?Z")],
            premise=RDFGraph([triple("k", "t", X)]),
        )
        omega = premise_elimination(q)
        # One member binds ?Y→k, ?Z→X: head contains the premise blank.
        assert any(
            any(t.bnodes() for t in sub.head) for sub in omega
        )

    def test_whole_body_into_premise(self):
        q = head_body_query(
            head=[("a", "sel", "b")],
            body=[("a", "t", "b")],
            premise=RDFGraph([triple("a", "t", "b")]),
        )
        omega = premise_elimination(q)
        # One member has an empty body: the premise satisfies everything.
        assert any(len(sub.body) == 0 for sub in omega)

    def test_answers_preserved_on_empty_body_member(self):
        q = head_body_query(
            head=[("a", "sel", "b")],
            body=[("a", "t", "b")],
            premise=RDFGraph([triple("a", "t", "b")]),
        )
        d = RDFGraph([triple("z", "z", "z")])
        # The premise alone satisfies the body: the answer is unconditional.
        assert triple("a", "sel", "b") in answer_union(q, d)


class TestProposition511:
    def test_union_containment_splits(self):
        # (q1 ∪ q2) ⊑ q′ iff q1 ⊑ q′ and q2 ⊑ q′ — exercised through
        # premise elimination: q with premise is the union of its Ω.
        q = example_5_10_query()
        q_wide = head_body_query(head=[("?X", "p", "?Y")], body=[("?X", "q", "?Y")])
        # Each Ω-member is contained in q_wide, hence so is q.
        for sub in premise_elimination(q):
            assert contained_standard(sub, q_wide)
        assert contained_standard(q, q_wide)

    def test_failure_of_one_member_breaks_containment(self):
        q = example_5_10_query()
        # q_narrow requires the t-edge; the a/b members lost it.
        q_narrow = head_body_query(
            head=[("?X", "p", "?Y")],
            body=[("?X", "q", "?Y"), ("?Y", "t", "s")],
        )
        members = premise_elimination(q)
        verdicts = [contained_standard(sub, q_narrow) for sub in members]
        assert not all(verdicts)
        assert not contained_standard(q, q_narrow)
