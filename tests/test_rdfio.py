"""Tests for the N-Triples-style I/O and DOT export."""

import pytest
from hypothesis import given, settings

from repro.core import BNode, Literal, RDFGraph, Triple, URI, triple
from repro.rdfio import ParseError, parse_ntriples, serialize_ntriples, to_dot

from .strategies import simple_graphs


class TestParsing:
    def test_bare_names(self):
        g = parse_ntriples("a p b .")
        assert g == RDFGraph([triple("a", "p", "b")])

    def test_angle_bracket_uris(self):
        g = parse_ntriples("<http://x.org/a> <http://x.org/p> <http://x.org/b> .")
        assert len(g) == 1
        t = next(iter(g))
        assert t.s == URI("http://x.org/a")

    def test_blank_nodes(self):
        g = parse_ntriples("_:X p b .")
        assert next(iter(g)).s == BNode("X")

    def test_literals(self):
        g = parse_ntriples('a p "hello world" .')
        assert next(iter(g)).o == Literal("hello world")

    def test_escaped_literals(self):
        g = parse_ntriples(r'a p "say \"hi\"\n" .')
        assert next(iter(g)).o == Literal('say "hi"\n')

    def test_comments_and_blank_lines(self):
        text = """
        # a comment
        a p b .

        c q d .  # trailing comment
        """
        assert len(parse_ntriples(text)) == 2

    def test_optional_trailing_dot(self):
        assert len(parse_ntriples("a p b")) == 1

    def test_error_wrong_arity(self):
        with pytest.raises(ParseError) as err:
            parse_ntriples("a p b c .")
        assert "line 1" in str(err.value)

    def test_error_ill_formed(self):
        with pytest.raises(ParseError):
            parse_ntriples('"literal" p b .')
        with pytest.raises(ParseError):
            parse_ntriples("a _:X b .")

    def test_multiline_graph(self):
        text = "a p b .\nb p c .\nc p a ."
        assert len(parse_ntriples(text)) == 3

    def test_empty_input(self):
        assert parse_ntriples("") == RDFGraph()


class TestSerialization:
    def test_deterministic(self):
        g = RDFGraph([triple("b", "p", "c"), triple("a", "p", "c")])
        assert serialize_ntriples(g) == "a p c .\nb p c .\n"

    def test_roundtrip_handwritten(self):
        g = RDFGraph(
            [
                triple("a", "p", BNode("X")),
                triple(BNode("X"), "q", Literal('tricky "quote"\t')),
                triple("http://x/y", "p", "b"),
            ]
        )
        assert parse_ntriples(serialize_ntriples(g)) == g

    @settings(max_examples=40, deadline=None)
    @given(simple_graphs(max_size=6))
    def test_roundtrip_random(self, g):
        assert parse_ntriples(serialize_ntriples(g)) == g

    def test_empty_graph(self):
        assert serialize_ntriples(RDFGraph()) == ""


class TestDot:
    def test_contains_nodes_and_edges(self):
        g = RDFGraph([triple("a", "p", BNode("X"))])
        dot = to_dot(g)
        assert "digraph" in dot
        assert 'label="a"' in dot
        assert 'label="p"' in dot
        assert "shape=circle" in dot  # blanks drawn as circles

    def test_literals_boxed(self):
        g = RDFGraph([triple("a", "p", Literal("text"))])
        assert "shape=box" in to_dot(g)

    def test_escaping(self):
        g = RDFGraph([triple("a", "p", Literal('with "quotes"'))])
        dot = to_dot(g)
        assert '\\"quotes\\"' in dot
