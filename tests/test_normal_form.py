"""Tests for normal forms (Section 3.3, Theorems 3.19 and 3.20)."""

from hypothesis import given, settings

from repro.core import BNode, RDFGraph, isomorphic, triple
from repro.core.vocabulary import SC, SP, TYPE
from repro.minimize import (
    core,
    is_lean,
    is_normal_form_of,
    normal_form,
    normal_form_equivalent,
)
from repro.semantics import closure, equivalent

from .strategies import rdfs_graphs, simple_graphs


class TestExample317:
    def test_g_and_h_equivalent(self, example_3_17_g, example_3_17_h):
        assert equivalent(example_3_17_g, example_3_17_h)

    def test_closures_not_isomorphic(self, example_3_17_g, example_3_17_h):
        assert not isomorphic(closure(example_3_17_g), closure(example_3_17_h))

    def test_cores_not_isomorphic(self, example_3_17_g, example_3_17_h):
        assert not isomorphic(core(example_3_17_g), core(example_3_17_h))

    def test_core_of_g_drops_blank(self, example_3_17_g):
        c = core(example_3_17_g)
        assert not c.bnodes()
        assert len(c) == 2  # just the two chain triples

    def test_normal_forms_isomorphic(self, example_3_17_g, example_3_17_h):
        assert isomorphic(normal_form(example_3_17_g), normal_form(example_3_17_h))

    def test_normal_form_contains_h(self, example_3_17_g, example_3_17_h):
        # "The normal form for G and H is H" — up to the reflexivity
        # padding the closure adds.
        nf = normal_form(example_3_17_g)
        assert example_3_17_h.issubgraph(nf)
        assert not nf.bnodes()


class TestTheorem319:
    def test_uniqueness_under_renaming(self):
        X = BNode("X")
        g = RDFGraph([triple("a", SC, X), triple(X, SC, "c")])
        renamed = g.rename_bnodes({X: BNode("Y")})
        assert isomorphic(normal_form(g), normal_form(renamed))

    @settings(max_examples=20, deadline=None)
    @given(rdfs_graphs(max_size=3), rdfs_graphs(max_size=3))
    def test_syntax_independence_random(self, g1, g2):
        assert equivalent(g1, g2) == isomorphic(normal_form(g1), normal_form(g2))

    @settings(max_examples=20, deadline=None)
    @given(rdfs_graphs(max_size=3))
    def test_nf_equivalent_to_graph(self, g):
        assert equivalent(normal_form(g), g)

    @settings(max_examples=20, deadline=None)
    @given(rdfs_graphs(max_size=3))
    def test_nf_is_lean_and_closed_core(self, g):
        nf = normal_form(g)
        assert is_lean(nf)
        assert nf == core(closure(g))

    @settings(max_examples=20, deadline=None)
    @given(rdfs_graphs(max_size=3))
    def test_nf_idempotent_up_to_iso(self, g):
        nf = normal_form(g)
        assert isomorphic(normal_form(nf), nf)

    @settings(max_examples=20, deadline=None)
    @given(rdfs_graphs(max_size=3), rdfs_graphs(max_size=3))
    def test_normal_form_equivalent_agrees(self, g1, g2):
        assert normal_form_equivalent(g1, g2) == equivalent(g1, g2)


class TestIsNormalFormOf:
    def test_positive(self, example_3_17_g):
        assert is_normal_form_of(normal_form(example_3_17_g), example_3_17_g)

    def test_negative_not_lean(self, example_3_17_g):
        # The closure itself is equivalent but not lean (blank N remains).
        cl = closure(example_3_17_g)
        assert not is_normal_form_of(cl, example_3_17_g)

    def test_negative_not_equivalent(self, example_3_17_g):
        other = RDFGraph([triple("z", "q", "w")])
        assert not is_normal_form_of(other, example_3_17_g)

    def test_simple_graph_nf_reduces_to_core_plus_padding(self):
        # For a simple graph, nf = core + reserved sp-reflexive padding
        # + (p, sp, p) for used predicates.
        g = RDFGraph([triple("a", "p", BNode("X")), triple("a", "p", "b")])
        nf = normal_form(g)
        assert triple("a", "p", "b") in nf
        assert triple("a", "p", BNode("X")) not in nf  # collapsed
        assert triple("p", SP, "p") in nf  # rule (8)
