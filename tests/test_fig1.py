"""E1: the Fig. 1 art schema — the paper's running example, end to end."""

from repro.core import BNode, RDFGraph, Variable, triple
from repro.core.vocabulary import DOM, RANGE, SC, SP, TYPE
from repro.minimize import minimal_representation, normal_form
from repro.query import answer_union, head_body_query, pre_answers
from repro.semantics import ClosureOracle, closure, entails


class TestSchemaInferences:
    """Every inference the figure's caption and text call out."""

    def test_paints_is_creating(self, fig1):
        assert entails(fig1, RDFGraph([triple("Picasso", "creates", "Guernica")]))

    def test_painter_typing_via_dom(self, fig1):
        assert entails(fig1, RDFGraph([triple("Picasso", TYPE, "painter")]))

    def test_painting_typing_via_range(self, fig1):
        assert entails(fig1, RDFGraph([triple("Guernica", TYPE, "painting")]))

    def test_lifted_typing_through_sc(self, fig1):
        assert entails(fig1, RDFGraph([triple("Picasso", TYPE, "artist")]))
        assert entails(fig1, RDFGraph([triple("Guernica", TYPE, "artifact")]))

    def test_domain_of_superproperty_applies(self, fig1):
        # creates dom artist + paints sp creates → Picasso type artist
        # directly by rule (6), independently of the painter chain.
        oracle = ClosureOracle(fig1)
        assert oracle.contains(triple("Picasso", TYPE, "artist"))

    def test_schema_level_entailments(self, fig1):
        assert entails(fig1, RDFGraph([triple("sculpts", SP, "creates")]))
        assert entails(fig1, RDFGraph([triple("sculptor", SC, "artist")]))

    def test_no_overreach(self, fig1):
        for wrong in [
            triple("Picasso", TYPE, "sculptor"),
            triple("Picasso", "sculpts", "Guernica"),
            triple("Guernica", TYPE, "museum"),
            triple("artist", SC, "sculptor"),
        ]:
            assert not entails(fig1, RDFGraph([wrong])), wrong

    def test_node_and_arc_labels_intersect(self, fig1):
        # "paints is both a node label and an arc label."
        assert triple("paints", DOM, "painter") in fig1  # node position
        from repro.core import URI
        assert fig1.count(p=URI("paints")) == 1  # arc position


class TestNormalization:
    def test_closure_size(self, fig1):
        cl = closure(fig1)
        assert len(cl) > len(fig1)
        assert fig1.issubgraph(cl)

    def test_schema_is_already_minimal(self, fig1):
        assert minimal_representation(fig1) == fig1

    def test_normal_form_is_ground(self, fig1):
        assert not normal_form(fig1).bnodes()


class TestQueriesOverFig1:
    def test_flemish_style_query(self, fig1):
        # "Artifacts created by artists", via the inferred creates edges.
        q = head_body_query(
            head=[("?A", "made", "?W")],
            body=[("?A", TYPE, "artist"), ("?A", "creates", "?W")],
        )
        result = answer_union(q, fig1)
        assert result == RDFGraph([triple("Picasso", "made", "Guernica")])

    def test_what_kinds_of_things_exist(self, fig1):
        q = head_body_query(
            head=[("?X", TYPE, "?C")], body=[("?X", TYPE, "?C")]
        )
        result = answer_union(q, fig1)
        assert triple("Picasso", TYPE, "painter") in result
        assert triple("Guernica", TYPE, "painting") in result

    def test_hypothetical_sculptor(self, fig1):
        # Premise: suppose Rodin sculpts The Thinker.
        q = head_body_query(
            head=[("?X", TYPE, "sculptor")],
            body=[("?X", TYPE, "sculptor")],
            premise=RDFGraph([triple("Rodin", "sculpts", "TheThinker")]),
        )
        result = answer_union(q, fig1)
        assert triple("Rodin", TYPE, "sculptor") in result
        assert triple("Picasso", TYPE, "sculptor") not in result

    def test_blank_head_reports_existence(self, fig1):
        q = head_body_query(
            head=[(BNode("N"), "exemplifies", "?C")],
            body=[("?X", TYPE, "?C"), ("?X", "creates", "?W")],
        )
        result = answer_union(q, fig1)
        # One Skolem witness per (creator class, artifact) valuation.
        from repro.core import URI
        assert result.count(p=URI("exemplifies")) >= 2
        assert result.bnodes()
