"""Tests for the command-line interface."""

import io

import pytest

from repro.cli import main


DATA = """
painter sc artist .
paints dom painter .
Picasso paints Guernica .
"""

SIMPLE_BLANKY = """
a p b .
a p _:X .
"""

QUERY = """
CONSTRUCT { ?X status known-artist . }
WHERE { ?X type artist . }
"""

WIDE_QUERY = """
CONSTRUCT { ?X status known-artist . }
WHERE { ?X type ?C . }
"""


@pytest.fixture
def files(tmp_path):
    paths = {}
    for name, content in [
        ("data.nt", DATA),
        ("blanky.nt", SIMPLE_BLANKY),
        ("goal.nt", "Picasso type artist .\n"),
        ("badgoal.nt", "Picasso type sculptor .\n"),
        ("q.rq", QUERY),
        ("wide.rq", WIDE_QUERY),
    ]:
        p = tmp_path / name
        p.write_text(content)
        paths[name] = str(p)
    return paths


def run(argv):
    out = io.StringIO()
    code = main(argv, out=out)
    return code, out.getvalue()


class TestGraphCommands:
    def test_closure(self, files):
        code, text = run(["closure", files["data.nt"]])
        assert code == 0
        assert "Picasso type artist ." in text

    def test_rho_closure_smaller(self, files):
        _, full = run(["closure", files["data.nt"]])
        _, rho = run(["closure", files["data.nt"], "--rho"])
        assert len(rho.splitlines()) < len(full.splitlines())
        assert "Picasso type artist ." in rho

    def test_core(self, files):
        code, text = run(["core", files["blanky.nt"]])
        assert code == 0
        assert text.strip() == "a p b ."

    def test_nf(self, files):
        code, text = run(["nf", files["blanky.nt"]])
        assert code == 0
        assert "a p b ." in text
        assert "_:" not in text

    def test_minimal(self, files):
        code, text = run(["minimal", files["data.nt"]])
        assert code == 0
        assert len(text.splitlines()) == 3  # already minimal

    def test_lean_verdicts(self, files):
        code, text = run(["lean", files["data.nt"]])
        assert code == 0 and "lean" in text
        code, text = run(["lean", files["blanky.nt"], "--witness"])
        assert code == 1
        assert "not lean" in text and "witness" in text

    def test_stats(self, files):
        code, text = run(["stats", files["blanky.nt"]])
        assert code == 0
        assert "triples:            2" in text
        assert "blank nodes:        1" in text
        assert "lean (Def 3.7):     False" in text

    def test_stats_store_maintenance_counters(self, files):
        code, text = run(["stats", files["data.nt"]])
        assert code == 0
        assert "closure size:" in text
        assert "incremental_insert: 0" in text
        assert "incremental_delete: 0" in text
        assert "recomputed:         1" in text

    def test_stats_query_cache_counters_declared_at_zero(self, files):
        code, text = run(["stats", files["data.nt"]])
        assert code == 0
        for name in (
            "query.cache.hits",
            "query.cache.misses",
            "query.cache.containment_hits",
            "query.cache.plan_hits",
            "query.cache.invalidations",
            "query.cache.evictions",
        ):
            assert any(
                line.split()[0] == f"{name}:" and line.split()[-1] == "0"
                for line in text.splitlines()
                if line.strip()
            ), name

    def test_dot(self, files):
        code, text = run(["dot", files["data.nt"]])
        assert code == 0
        assert text.startswith("digraph")


class TestDecisionCommands:
    def test_entails_positive(self, files):
        code, text = run(["entails", files["data.nt"], files["goal.nt"]])
        assert code == 0 and "entailed" in text

    def test_entails_negative_exit_code(self, files):
        code, text = run(["entails", files["data.nt"], files["badgoal.nt"]])
        assert code == 1 and "not entailed" in text

    def test_entails_simple_mode(self, files):
        code, _ = run(["entails", "--simple", files["data.nt"], files["goal.nt"]])
        assert code == 1  # needs RDFS reasoning

    def test_equivalent(self, files):
        code, _ = run(["equivalent", files["data.nt"], files["data.nt"]])
        assert code == 0
        code, _ = run(["equivalent", files["data.nt"], files["goal.nt"]])
        assert code == 1

    def test_contains(self, files):
        code, text = run(["contains", files["q.rq"], files["wide.rq"]])
        assert code == 0 and "contained" in text
        code, text = run(["contains", files["wide.rq"], files["q.rq"]])
        assert code == 1

    def test_contains_entailment_flag(self, files):
        code, _ = run(
            ["contains", "--entailment", files["q.rq"], files["wide.rq"]]
        )
        assert code == 0


class TestQueryAndPath:
    def test_query(self, files):
        code, text = run(["query", files["q.rq"], files["data.nt"]])
        assert code == 0
        assert text.strip() == "Picasso status known-artist ."

    def test_query_merge_semantics(self, files):
        code, _ = run(
            ["query", files["q.rq"], files["data.nt"], "--semantics", "merge"]
        )
        assert code == 0

    def test_query_cached_matches_plain(self, files):
        plain_code, plain_text = run(
            ["query", files["q.rq"], files["data.nt"]]
        )
        code, text = run(
            ["query", files["q.rq"], files["data.nt"], "--cached"]
        )
        assert code == plain_code == 0
        assert text == plain_text

    def test_query_cached_merge_matches_plain(self, files):
        _, plain_text = run(
            ["query", files["q.rq"], files["data.nt"], "--semantics", "merge"]
        )
        code, text = run(
            [
                "query", files["q.rq"], files["data.nt"],
                "--cached", "--semantics", "merge",
            ]
        )
        assert code == 0
        assert text == plain_text

    def test_path_all_pairs(self, files):
        code, text = run(["path", "paints", files["data.nt"]])
        assert code == 0
        assert "Picasso\tGuernica" in text

    def test_path_single_source_rdfs(self, files):
        code, text = run(
            ["path", "type/sc*", files["data.nt"], "--source", "Picasso", "--rdfs"]
        )
        assert code == 0
        assert "artist" in text and "painter" in text


class TestExplain:
    def test_explain_entails(self, files):
        code, text = run(
            ["explain", "entails", files["data.nt"], files["goal.nt"], "--rdfs"]
        )
        assert code == 0
        assert "entailment plan:" in text
        assert "strategies:" in text

    def test_explain_query(self, files):
        code, text = run(["explain", "query", files["q.rq"], files["data.nt"]])
        assert code == 0
        assert "matching plan:" in text
        assert "?X" in text


class TestProfile:
    def test_profile_closure_emits_shared_registry(self, files):
        code, text = run(["--profile", "closure", files["data.nt"]])
        assert code == 0
        # Payload first, then the profile as N-Triples comment lines.
        assert "Picasso type artist ." in text
        profile = [l for l in text.splitlines() if l.startswith("#")]
        assert profile, "no profile lines emitted"
        joined = "\n".join(profile)
        # One shared registry: every instrumented layer's counters show
        # up (declared at zero for layers this command never touched).
        for name in (
            "planner.backtracks",
            "datalog.derived",
            "store.dataset_cache.hit",
            "closure.rounds",
        ):
            assert name in joined
        assert "spans:" in joined or "slowest spans" in joined

    def test_profile_leaves_instrumentation_off(self, files):
        from repro import obs

        run(["--profile", "entails", files["data.nt"], files["goal.nt"]])
        assert not obs.is_enabled()

    def test_profile_json(self, files, tmp_path):
        import json

        dest = tmp_path / "prof.json"
        code, _ = run(
            ["--profile", "--profile-json", str(dest),
             "closure", files["data.nt"]]
        )
        assert code == 0
        payload = json.loads(dest.read_text())
        assert payload["metrics"]["counters"]["closure.rounds"] >= 1
        assert "trace" in payload

    def test_without_profile_no_comment_lines(self, files):
        _, text = run(["closure", files["data.nt"]])
        assert not [l for l in text.splitlines() if l.startswith("#")]


class TestErrors:
    def test_missing_file(self):
        code, _ = run(["closure", "/nonexistent/file.nt"])
        assert code == 2

    def test_bad_graph_syntax(self, tmp_path):
        bad = tmp_path / "bad.nt"
        bad.write_text("a p\n")
        code, _ = run(["closure", str(bad)])
        assert code == 2

    def test_bad_query_syntax(self, tmp_path, files):
        bad = tmp_path / "bad.rq"
        bad.write_text("SELECT nothing")
        code, _ = run(["query", str(bad), files["data.nt"]])
        assert code == 2

    def test_bad_path_expression(self, files):
        code, _ = run(["path", "((", files["data.nt"]])
        assert code == 2
