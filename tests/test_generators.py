"""Tests for the workload generators."""

import pytest

from repro.core import RDFGraph
from repro.core.vocabulary import DOM, RANGE, SC, SP, TYPE
from repro.generators import (
    art_schema,
    blank_chain,
    blank_star,
    chain_query,
    dom_range_ladder,
    property_fanout,
    random_digraph,
    random_ground_graph,
    random_query_from_graph,
    random_schema_with_instances,
    random_simple_rdf_graph,
    redundant_blank_fan,
    sc_chain,
    sc_chain_with_instance,
    sp_chain,
    star_query,
)
from repro.minimize import satisfies_theorem_316_preconditions


class TestRandomGenerators:
    def test_deterministic_given_seed(self):
        assert random_simple_rdf_graph(8, 5, seed=42) == random_simple_rdf_graph(
            8, 5, seed=42
        )
        assert random_digraph(5, 6, seed=1).edges == random_digraph(5, 6, seed=1).edges

    def test_different_seeds_differ(self):
        g1 = random_simple_rdf_graph(10, 6, seed=1)
        g2 = random_simple_rdf_graph(10, 6, seed=2)
        assert g1 != g2

    def test_requested_sizes(self):
        assert len(random_simple_rdf_graph(10, 8, seed=0)) == 10
        assert len(random_digraph(6, 8, seed=0).edges) == 8

    def test_edge_cap(self):
        # Cannot have more than n(n-1) directed edges.
        g = random_digraph(3, 100, seed=0)
        assert len(g.edges) == 6

    def test_ground_graph_has_no_blanks(self):
        assert random_ground_graph(10, 6, seed=3).is_ground()

    def test_blank_probability_extremes(self):
        all_blank = random_simple_rdf_graph(8, 6, blank_probability=1.0, seed=0)
        assert not [t for t in all_blank if not t.bnodes()]

    def test_simple_graphs_are_simple(self):
        assert random_simple_rdf_graph(10, 6, seed=5).is_simple()


class TestStructuredFamilies:
    def test_sp_chain(self):
        g = sp_chain(5)
        assert len(g) == 5
        assert all(t.p == SP for t in g)

    def test_sc_chain_with_instance(self):
        g = sc_chain_with_instance(4)
        assert len(g) == 5
        assert g.count(p=TYPE) == 1

    def test_blank_chain_is_acyclic(self):
        assert not blank_chain(6).has_blank_cycle()

    def test_blank_star_not_lean(self):
        from repro.minimize import is_lean

        assert not is_lean(blank_star(3))

    def test_property_fanout_size(self):
        g = property_fanout(3, 4)
        assert len(g) == 3 + 3 * 4

    def test_redundant_fan_core_size(self):
        from repro.minimize import core

        assert len(core(redundant_blank_fan(7))) == 1

    def test_dom_range_ladder_well_formed(self):
        g = dom_range_ladder(3)
        assert g.count(p=DOM) == 3
        assert g.count(p=RANGE) == 3


class TestSchemas:
    def test_art_schema_shape(self):
        g = art_schema()
        assert len(g) == 15
        assert g.count(p=SC) == 4
        assert g.count(p=SP) == 2
        assert g.count(p=DOM) == 4
        assert g.count(p=RANGE) == 4

    def test_art_schema_satisfies_316(self):
        assert satisfies_theorem_316_preconditions(art_schema())

    def test_random_schema_acyclic_hierarchies(self):
        from repro.minimize import is_acyclic_for

        for seed in range(4):
            g = random_schema_with_instances(5, 4, 5, 8, seed=seed)
            assert is_acyclic_for(g, SC)
            assert is_acyclic_for(g, SP)

    def test_random_schema_deterministic(self):
        assert random_schema_with_instances(
            4, 3, 4, 5, seed=9
        ) == random_schema_with_instances(4, 3, 4, 5, seed=9)


class TestQueryGenerators:
    def test_chain_query_shape(self):
        q = chain_query(4)
        assert len(list(q.body)) == 4
        assert len(q.body.variables()) == 5

    def test_star_query_shape(self):
        q = star_query(3)
        assert len(q.body.variables()) == 4

    def test_random_query_has_matches(self):
        from repro.query import pre_answers

        g = random_ground_graph(12, 6, seed=4)
        q = random_query_from_graph(g, 3, seed=4)
        assert pre_answers(q, g)  # the source subgraph itself matches

    def test_random_query_over_empty_graph_rejected(self):
        with pytest.raises(ValueError):
            random_query_from_graph(RDFGraph(), 2, seed=0)

    def test_random_query_deterministic(self):
        g = random_ground_graph(12, 6, seed=4)
        assert str(random_query_from_graph(g, 3, seed=7)) == str(
            random_query_from_graph(g, 3, seed=7)
        )
