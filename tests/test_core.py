"""Tests for cores (Theorems 3.10, 3.11, 3.12.2)."""

from hypothesis import given, settings

from repro.core import BNode, RDFGraph, isomorphic, triple
from repro.minimize import core, core_with_retraction, is_core_of, is_lean
from repro.reductions import (
    DiGraph,
    graph_core_direct,
    graph_core_via_rdf,
    is_graph_core_via_rdf,
)
from repro.semantics import equivalent, simple_entails, simple_equivalent

from .strategies import simple_graphs


class TestCoreBasics:
    def test_lean_graph_is_its_own_core(self, example_3_8_g2):
        assert core(example_3_8_g2) == example_3_8_g2

    def test_example_3_8_g1_core(self, example_3_8_g1):
        c = core(example_3_8_g1)
        assert len(c) == 1
        assert is_lean(c)

    def test_ground_graph_core_is_itself(self):
        g = RDFGraph([triple("a", "p", "b"), triple("c", "q", "d")])
        assert core(g) == g

    def test_core_is_subgraph_instance(self):
        X = BNode("X")
        g = RDFGraph([triple("a", "p", "b"), triple("a", "p", X)])
        c, retraction = core_with_retraction(g)
        assert c.issubgraph(g)
        assert retraction.apply_graph(g) == c

    def test_core_idempotent(self, example_3_8_g1):
        c = core(example_3_8_g1)
        assert core(c) == c

    def test_redundant_fan(self):
        from repro.generators import redundant_blank_fan

        g = redundant_blank_fan(5)
        assert core(g) == RDFGraph([triple("a", "p", "b")])

    def test_blank_star_collapses(self):
        from repro.generators import blank_star

        assert len(core(blank_star(6))) == 1


class TestTheorem310Uniqueness:
    def test_unique_up_to_isomorphism(self):
        # Two different retraction orders must give isomorphic cores.
        X, Y, Z = BNode("X"), BNode("Y"), BNode("Z")
        g = RDFGraph(
            [
                triple("a", "p", X),
                triple("a", "p", Y),
                triple("a", "p", Z),
                triple("a", "p", "b"),
            ]
        )
        c1 = core(g)
        # Rename blanks (changes deterministic ordering) and re-core.
        renamed = g.rename_bnodes({X: BNode("M"), Y: BNode("N"), Z: BNode("O")})
        c2 = core(renamed)
        assert isomorphic(c1, c2)

    @settings(max_examples=40, deadline=None)
    @given(simple_graphs(max_size=5))
    def test_core_equivalent_to_graph(self, g):
        c = core(g)
        assert simple_equivalent(c, g)

    @settings(max_examples=40, deadline=None)
    @given(simple_graphs(max_size=5))
    def test_core_is_lean_instance_subgraph(self, g):
        c, retraction = core_with_retraction(g)
        assert is_lean(c)
        assert c.issubgraph(g)
        assert retraction.apply_graph(g) == c

    @settings(max_examples=25, deadline=None)
    @given(simple_graphs(max_size=4))
    def test_renaming_invariance(self, g):
        blanks = sorted(g.bnodes(), key=lambda n: n.value)
        renaming = {n: BNode(f"zz{i}") for i, n in enumerate(blanks)}
        assert isomorphic(core(g), core(g.rename_bnodes(renaming)))


class TestTheorem311SimpleGraphs:
    @settings(max_examples=30, deadline=None)
    @given(simple_graphs(max_size=4), simple_graphs(max_size=4))
    def test_equivalence_iff_isomorphic_cores(self, g1, g2):
        assert simple_equivalent(g1, g2) == isomorphic(core(g1), core(g2))

    @settings(max_examples=30, deadline=None)
    @given(simple_graphs(max_size=4))
    def test_core_is_minimal(self, g):
        # No strictly smaller equivalent subgraph exists.
        c = core(g)
        import itertools

        for smaller_size in range(len(c)):
            for subset in itertools.combinations(c.triples, smaller_size):
                candidate = RDFGraph(subset)
                assert not simple_equivalent(candidate, g)


class TestIsCoreOf:
    def test_positive(self, example_3_8_g1):
        candidate = RDFGraph([triple("a", "p", BNode("W"))])
        assert is_core_of(candidate, example_3_8_g1)

    def test_negative_not_lean(self, example_3_8_g1):
        assert not is_core_of(example_3_8_g1, example_3_8_g1)

    def test_negative_wrong_graph(self, example_3_8_g1):
        candidate = RDFGraph([triple("z", "q", "w")])
        assert not is_core_of(candidate, example_3_8_g1)


class TestGraphTheoreticCores:
    """Theorem 3.12.2's encoding, cross-validated against direct search."""

    def test_even_cycle_core_is_k2(self):
        c = graph_core_via_rdf(DiGraph.cycle(6))
        assert len(c.edges) == 2  # K2 with both orientations

    def test_odd_cycle_is_its_own_core(self):
        c5 = DiGraph.cycle(5)
        c = graph_core_via_rdf(c5)
        assert len(c.edges) == len(c5.edges)

    def test_matches_direct_computation(self):
        from repro.generators import random_digraph

        for seed in range(6):
            h = random_digraph(4, 5, seed=seed)
            via_rdf = graph_core_via_rdf(h)
            direct = graph_core_direct(h)
            assert len(via_rdf.edges) == len(direct.edges)

    def test_core_identification(self):
        assert is_graph_core_via_rdf(DiGraph.complete(2), DiGraph.cycle(6))
        assert not is_graph_core_via_rdf(DiGraph.cycle(6), DiGraph.cycle(6))
        assert is_graph_core_via_rdf(DiGraph.cycle(5), DiGraph.cycle(5))
