"""Tests for the executable hardness reductions."""

import pytest

from repro.core import isomorphic
from repro.generators import random_digraph
from repro.reductions import (
    CNF,
    Clause,
    DiGraph,
    brute_force_chromatic_number,
    brute_force_satisfiable,
    contains_triangle,
    decode_graph,
    encode_graph,
    find_graph_homomorphism,
    graph_core_direct,
    graph_core_via_rdf,
    has_proper_retract_via_rdf,
    homomorphic_direct,
    homomorphic_via_rdf,
    homomorphically_equivalent_via_rdf,
    is_3_colorable_via_rdf,
    is_graph_core_via_rdf,
    is_k_colorable_via_rdf,
    random_3sat,
    satisfiable_via_cq,
    satisfiable_via_rdf_query,
    triangle_equivalence_instance,
)


class TestEncoding:
    def test_roundtrip(self):
        # Decoding recovers the structure with blank-node vertices.
        from repro.core import BNode

        h = DiGraph.cycle(4, directed=True)
        decoded = decode_graph(encode_graph(h))
        expected = {
            (BNode(f"v!{u!r}"), BNode(f"v!{v!r}")) for u, v in h.edges
        }
        assert decoded.edges == expected

    def test_encoding_is_all_blank(self):
        g = encode_graph(DiGraph.path(3))
        assert not g.voc() - {g.sorted_triples()[0].p}
        assert g.bnodes()

    def test_decode_rejects_foreign_predicates(self):
        from repro.core import RDFGraph, triple

        with pytest.raises(ValueError):
            decode_graph(RDFGraph([triple("a", "other", "b")]))

    def test_isomorphism_correspondence(self):
        h1 = DiGraph.cycle(4)
        h2 = DiGraph(edges={(f"n{u}", f"n{v}") for u, v in h1.edges})
        assert isomorphic(encode_graph(h1), encode_graph(h2))
        h3 = DiGraph.cycle(5)
        assert not isomorphic(encode_graph(h1), encode_graph(h3))


class TestHomomorphism:
    def test_cross_validation_random(self):
        for seed in range(10):
            h1 = random_digraph(4, 4, seed=seed)
            h2 = random_digraph(4, 6, seed=1000 + seed)
            assert homomorphic_via_rdf(h1, h2) == homomorphic_direct(h1, h2), seed

    def test_known_cases(self):
        # Any bipartite (even cycle) maps to K2; odd cycles don't.
        k2 = DiGraph.complete(2)
        assert homomorphic_via_rdf(DiGraph.cycle(4), k2)
        assert homomorphic_via_rdf(DiGraph.cycle(6), k2)
        assert not homomorphic_via_rdf(DiGraph.cycle(5), k2)

    def test_homomorphism_witness_valid(self):
        h1, h2 = DiGraph.path(4), DiGraph.cycle(3, directed=True)
        hom = find_graph_homomorphism(h1, h2)
        assert hom is not None
        for u, v in h1.edges:
            assert (hom[u], hom[v]) in h2.edges

    def test_empty_graph_maps_anywhere(self):
        assert homomorphic_direct(DiGraph(), DiGraph.complete(2))

    def test_hom_equivalence(self):
        # All even cycles are hom-equivalent to K2.
        assert homomorphically_equivalent_via_rdf(DiGraph.cycle(4), DiGraph.cycle(6))
        assert not homomorphically_equivalent_via_rdf(
            DiGraph.cycle(5), DiGraph.cycle(4)
        )


class TestColoring:
    def test_known_chromatic_numbers(self):
        assert brute_force_chromatic_number(DiGraph.complete(4)) == 4
        assert brute_force_chromatic_number(DiGraph.cycle(5)) == 3
        assert brute_force_chromatic_number(DiGraph.cycle(6)) == 2
        assert brute_force_chromatic_number(DiGraph.path(5, directed=False)) == 2

    def test_via_rdf_matches_brute_force(self):
        for seed in range(6):
            h = random_digraph(5, 6, seed=seed)
            chromatic = brute_force_chromatic_number(h)
            assert is_3_colorable_via_rdf(h) == (chromatic <= 3), seed
            assert is_k_colorable_via_rdf(h, 2) == (chromatic <= 2), seed

    def test_triangle_detection(self):
        assert contains_triangle(DiGraph.complete(3))
        assert not contains_triangle(DiGraph.cycle(4))
        assert not contains_triangle(DiGraph.cycle(5))

    def test_theorem_2_9_2_predicate(self):
        # K3-equivalence ⟺ triangle + 3-colorable.
        for h in (
            DiGraph.complete(3),
            DiGraph.cycle(4),
            DiGraph.cycle(5),
            DiGraph.complete(4),
        ):
            assert triangle_equivalence_instance(h) == (
                homomorphically_equivalent_via_rdf(h, DiGraph.complete(3))
            )


class TestCoreProblems:
    def test_core_correspondence_random(self):
        for seed in range(6):
            h = random_digraph(4, 5, seed=seed)
            assert (
                len(graph_core_via_rdf(h).edges)
                == len(graph_core_direct(h).edges)
            ), seed

    def test_retract_detection(self):
        assert has_proper_retract_via_rdf(DiGraph.cycle(4))
        assert not has_proper_retract_via_rdf(DiGraph.cycle(5))
        assert not has_proper_retract_via_rdf(DiGraph.complete(3))

    def test_core_identification(self):
        assert is_graph_core_via_rdf(DiGraph.complete(2), DiGraph.cycle(4))
        assert not is_graph_core_via_rdf(DiGraph.complete(3), DiGraph.cycle(4))


class TestSAT:
    def test_cross_validation_random(self):
        for seed in range(10):
            f = random_3sat(4, 8, seed=seed)
            expected = brute_force_satisfiable(f)
            assert satisfiable_via_cq(f) == expected, seed

    def test_rdf_rendition_matches(self):
        for seed in range(5):
            f = random_3sat(4, 6, seed=seed)
            assert satisfiable_via_rdf_query(f) == brute_force_satisfiable(f), seed

    def test_unsatisfiable_instance(self):
        # (x ∨ x ∨ x) ∧ (¬x ∨ ¬x ∨ ¬x) — forced contradiction.
        f = CNF(
            clauses=(
                Clause((("x", True), ("x", True), ("x", True))),
                Clause((("x", False), ("x", False), ("x", False))),
            )
        )
        assert not brute_force_satisfiable(f)
        assert not satisfiable_via_cq(f)
        assert not satisfiable_via_rdf_query(f)

    def test_trivially_satisfiable(self):
        f = CNF(clauses=(Clause((("x", True), ("y", True), ("z", False))),))
        assert satisfiable_via_cq(f)
        assert satisfiable_via_rdf_query(f)

    def test_clause_satisfaction(self):
        c = Clause((("x", True), ("y", False), ("z", True)))
        assert c.satisfied_by({"x": False, "y": False, "z": False})
        assert not c.satisfied_by({"x": False, "y": True, "z": False})

    def test_random_3sat_shape(self):
        f = random_3sat(5, 7, seed=1)
        assert len(f.clauses) == 7
        for c in f.clauses:
            assert len({v for v, _s in c.literals}) == 3
