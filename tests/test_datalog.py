"""Tests for the Datalog engine and the RDFS program (Section 4.2)."""

import pytest
from hypothesis import given, settings

from repro.core import BNode, RDFGraph, triple
from repro.core.vocabulary import SC, SP, TYPE
from repro.datalog import (
    DVar,
    DatalogAtom,
    DatalogProgram,
    DatalogRule,
    TRIPLE_RELATION,
    closure_via_datalog,
    evaluate_program,
    rdfs_datalog_program,
)
from repro.datalog.engine import extend_fixpoint, retract_fixpoint
from repro.generators import art_schema, random_schema_with_instances
from repro.semantics import rdfs_closure

from .strategies import rdfs_graphs

X, Y, Z = DVar("x"), DVar("y"), DVar("z")


def reach_program():
    return DatalogProgram(
        rules=(
            DatalogRule(
                head=DatalogAtom("reach", (X, Y)), body=(DatalogAtom("edge", (X, Y)),)
            ),
            DatalogRule(
                head=DatalogAtom("reach", (X, Z)),
                body=(DatalogAtom("reach", (X, Y)), DatalogAtom("edge", (Y, Z))),
            ),
        )
    )


class TestEngine:
    def test_transitive_closure(self):
        facts = [("edge", (i, i + 1)) for i in range(10)]
        out = evaluate_program(reach_program(), facts)
        assert len(out["reach"]) == 10 * 11 // 2
        assert (0, 10) in out["reach"]

    def test_cycle(self):
        facts = [("edge", (0, 1)), ("edge", (1, 2)), ("edge", (2, 0))]
        out = evaluate_program(reach_program(), facts)
        assert len(out["reach"]) == 9  # complete on 3 nodes incl. loops

    def test_constants_in_rules(self):
        program = DatalogProgram(
            rules=(
                DatalogRule(
                    head=DatalogAtom("special", (X,)),
                    body=(DatalogAtom("edge", ("hub", X)),),
                ),
            )
        )
        out = evaluate_program(program, [("edge", ("hub", "a")), ("edge", ("b", "c"))])
        assert out["special"] == {("a",)}

    def test_repeated_variables(self):
        program = DatalogProgram(
            rules=(
                DatalogRule(
                    head=DatalogAtom("loop", (X,)),
                    body=(DatalogAtom("edge", (X, X)),),
                ),
            )
        )
        out = evaluate_program(program, [("edge", (1, 1)), ("edge", (1, 2))])
        assert out["loop"] == {(1,)}

    def test_range_restriction_enforced(self):
        with pytest.raises(ValueError):
            DatalogRule(
                head=DatalogAtom("r", (X, Y)), body=(DatalogAtom("e", (X,)),)
            )

    def test_factlike_rules(self):
        program = DatalogProgram(
            rules=(DatalogRule(head=DatalogAtom("axiom", ("a",)), body=()),)
        )
        out = evaluate_program(program, [])
        assert out["axiom"] == {("a",)}

    def test_multi_body_join(self):
        program = DatalogProgram(
            rules=(
                DatalogRule(
                    head=DatalogAtom("tri", (X, Y, Z)),
                    body=(
                        DatalogAtom("edge", (X, Y)),
                        DatalogAtom("edge", (Y, Z)),
                        DatalogAtom("edge", (Z, X)),
                    ),
                ),
            )
        )
        facts = [("edge", (0, 1)), ("edge", (1, 2)), ("edge", (2, 0))]
        out = evaluate_program(program, facts)
        assert (0, 1, 2) in out["tri"]
        assert len(out["tri"]) == 3  # rotations

    def test_extend_fixpoint_matches_recompute(self):
        base = [("edge", (i, i + 1)) for i in range(6)]
        extra = [("edge", (6, 7)), ("edge", (2, 9))]
        closed = evaluate_program(reach_program(), base)
        closed_facts = [
            (rel, row) for rel, rows in closed.items() for row in rows
        ]
        incremental = extend_fixpoint(reach_program(), closed_facts, extra)
        from_scratch = evaluate_program(reach_program(), base + extra)
        assert incremental["reach"] == from_scratch["reach"]

    def test_rule_str(self):
        rule = reach_program().rules[1]
        assert ":-" in str(rule)


def _facts_list(result):
    return [(rel, row) for rel, rows in result.items() for row in rows]


class TestRetractFixpoint:
    """DRed (delete–rederive) maintenance against from-scratch evaluation."""

    def _check(self, program, base, removed):
        base = list(base)
        removed = list(removed)
        kept = [f for f in base if f not in removed]
        closed = evaluate_program(program, base)
        maintained = retract_fixpoint(
            program, _facts_list(closed), kept, removed
        )
        from_scratch = evaluate_program(program, kept)
        assert maintained == from_scratch
        return maintained

    def test_chain_cut(self):
        base = [("edge", (i, i + 1)) for i in range(6)]
        out = self._check(reach_program(), base, [("edge", (2, 3))])
        assert (0, 2) in out["reach"]
        assert (0, 3) not in out["reach"]

    def test_alternate_support_survives(self):
        # Two routes 0 → 2; cutting one keeps reachability via the other.
        base = [
            ("edge", (0, 1)),
            ("edge", (1, 2)),
            ("edge", (0, 2)),
            ("edge", (2, 3)),
        ]
        out = self._check(reach_program(), base, [("edge", (1, 2))])
        assert (0, 2) in out["reach"]
        assert (0, 3) in out["reach"]
        assert (1, 2) not in out["reach"]

    def test_remove_everything(self):
        base = [("edge", (0, 1)), ("edge", (1, 2))]
        out = self._check(reach_program(), base, base)
        assert not out.get("reach")

    def test_remove_nothing_is_identity(self):
        base = [("edge", (0, 1)), ("edge", (1, 2))]
        closed = evaluate_program(reach_program(), base)
        maintained = retract_fixpoint(
            reach_program(), _facts_list(closed), base, []
        )
        assert maintained == closed

    def test_axioms_rederived(self):
        # Body-less rule heads must survive any deletion wave.
        program = DatalogProgram(
            rules=reach_program().rules
            + (DatalogRule(head=DatalogAtom("reach", (0, 0)), body=()),)
        )
        base = [("edge", (0, 1))]
        out = self._check(program, base, base)
        assert (0, 0) in out["reach"]

    def test_rdfs_single_triple_deletions(self):
        program = rdfs_datalog_program()
        g = random_schema_with_instances(4, 3, 6, 9, seed=7)
        base = [(TRIPLE_RELATION, (t.s, t.p, t.o)) for t in g]
        for victim in list(g)[:4]:
            removed = [(TRIPLE_RELATION, (victim.s, victim.p, victim.o))]
            self._check(program, base, removed)

    @settings(max_examples=25, deadline=None)
    @given(rdfs_graphs(max_size=5))
    def test_rdfs_random_deletions(self, g):
        program = rdfs_datalog_program()
        triples = sorted(g, key=str)
        if not triples:
            return
        base = [(TRIPLE_RELATION, (t.s, t.p, t.o)) for t in triples]
        removed = base[: len(base) // 2 + 1]
        self._check(program, base, removed)


class TestRDFSProgram:
    def test_program_shape(self):
        program = rdfs_datalog_program()
        # (2)–(8) are 7 rules; (9) = 5 axioms; (10) = 2; (11) = 2;
        # (12) = 3; (13) = 2.
        assert len(program.rules) == 7 + 5 + 2 + 2 + 3 + 2
        assert program.idb_relations() == {TRIPLE_RELATION}

    def test_agrees_on_art_schema(self):
        g = art_schema()
        assert closure_via_datalog(g) == rdfs_closure(g)

    def test_agrees_on_blank_graphs(self):
        g = RDFGraph(
            [triple("a", SC, BNode("X")), triple(BNode("X"), SC, "c"),
             triple("i", TYPE, "a")]
        )
        assert closure_via_datalog(g) == rdfs_closure(g)

    def test_agrees_on_pathological_vocabulary(self):
        g = RDFGraph(
            [triple("meta", SP, SP), triple("a", "meta", "b"),
             triple("b", "meta", "c")]
        )
        assert closure_via_datalog(g) == rdfs_closure(g)

    def test_agrees_on_random_schemas(self):
        for seed in range(5):
            g = random_schema_with_instances(4, 3, 4, 6, seed=seed)
            assert closure_via_datalog(g) == rdfs_closure(g), seed

    @settings(max_examples=30, deadline=None)
    @given(rdfs_graphs(max_size=4))
    def test_agrees_random(self, g):
        assert closure_via_datalog(g) == rdfs_closure(g)

    def test_empty_graph_axioms(self):
        closed = closure_via_datalog(RDFGraph())
        assert len(closed) == 5  # rule (9)'s reserved reflexives
