"""Stateful property test: the store against a reference model.

Hypothesis drives random operation sequences (adds, removes, committed
and rolled-back transactions) against a :class:`TripleStore` while a
plain set of triples serves as the reference model.  After every step
the store's dataset must equal the model, and its materialized closure
must equal a from-scratch closure of the model — this exercises the
incremental-maintenance machinery under arbitrary interleavings.
"""

from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, invariant, precondition, rule

from repro.core import RDFGraph, Triple, URI
from repro.core.vocabulary import SC, SP, TYPE
from repro.semantics import rdfs_closure
from repro.store import TripleStore

_NODES = [URI(n) for n in ("a", "b", "c", "d")]
_PREDICATES = [URI("p"), SC, SP, TYPE]

triples_strategy = st.builds(
    Triple,
    st.sampled_from(_NODES),
    st.sampled_from(_PREDICATES),
    st.sampled_from(_NODES),
)


class StoreMachine(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        self.store = TripleStore()
        self.model = set()
        self.txn_model_backup = None

    # -- operations -----------------------------------------------------

    @rule(t=triples_strategy)
    def add(self, t):
        self.store.add(t)
        self.model.add(t)
        if self.txn_model_backup is None:
            pass

    @rule(t=triples_strategy)
    def remove(self, t):
        self.store.remove(t)
        self.model.discard(t)

    @precondition(lambda self: self.txn_model_backup is None)
    @rule()
    def begin(self):
        self.store.begin()
        self.txn_model_backup = set(self.model)

    @precondition(lambda self: self.txn_model_backup is not None)
    @rule()
    def commit(self):
        self.store.commit()
        self.txn_model_backup = None

    @precondition(lambda self: self.txn_model_backup is not None)
    @rule()
    def rollback(self):
        self.store.rollback()
        self.model = self.txn_model_backup
        self.txn_model_backup = None

    @rule()
    def materialize(self):
        # Force materialization at arbitrary points so later adds take
        # the incremental path.
        self.store.closure()

    # -- invariants -------------------------------------------------------

    @invariant()
    def dataset_matches_model(self):
        assert self.store.dataset() == RDFGraph(self.model)

    @invariant()
    def closure_matches_reference(self):
        assert self.store.closure() == rdfs_closure(RDFGraph(self.model))


StoreMachine.TestCase.settings = settings(
    max_examples=15, stateful_step_count=12, deadline=None
)
TestStoreStateful = StoreMachine.TestCase
