"""Property and unit tests for the two-tier query cache.

The headline property: with the cache enabled, ``TripleStore.query``
returns *byte-identical* answers to a from-scratch ``answers()`` call —
same Skolem blank labels, same triples — under random interleaved
query/update streams (the ``test_store_maintenance`` stream machinery).
Every op re-asks every query, so the stream exercises exact hits,
identity and proper containment serving, plan reuse, DRed-delta
invalidation, and eviction — and any stale answer surviving a delta
fails the equality.
"""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import BNode, RDFGraph, Triple, URI, Variable
from repro.core.vocabulary import SC, TYPE
from repro.query import QueryCache, answers, canonical_body, head_body_query
from repro.query.cache import (
    CONTAINMENT_HITS,
    EVICTIONS,
    HITS,
    INVALIDATIONS,
    MISSES,
    PLAN_HITS,
)
from repro.store import TripleStore

from .strategies import uris
from .test_store_maintenance import _apply, _ops, _union

_VARS = [Variable("V0"), Variable("V1"), Variable("V2")]
_HEAD_BLANKS = [BNode("h1"), BNode("h2")]


@st.composite
def cache_queries(draw):
    """Premise-free queries over the maintenance streams' term pools."""
    var_pool = st.sampled_from(_VARS)
    body = []
    for _ in range(draw(st.integers(min_value=1, max_value=3))):
        s = draw(st.one_of(var_pool, uris()))
        p = draw(st.one_of(var_pool, uris(["p", "q", "r"]), st.sampled_from([SC, TYPE])))
        o = draw(st.one_of(var_pool, uris()))
        body.append(Triple(s, p, o))
    body_vars = sorted(
        {x for t in body for x in t.variables()}, key=lambda v: v.value
    )
    head_subject = st.one_of(uris(), st.sampled_from(_HEAD_BLANKS))
    head_object = head_subject
    head_predicate = uris(["p", "q"])
    if body_vars:
        bound = st.sampled_from(body_vars)
        head_subject = st.one_of(head_subject, bound)
        head_object = head_subject
        head_predicate = st.one_of(head_predicate, bound)
    head = [
        Triple(draw(head_subject), draw(head_predicate), draw(head_object))
        for _ in range(draw(st.integers(min_value=1, max_value=2)))
    ]
    head_vars = sorted(
        {x for t in head for x in t.variables()}, key=lambda v: v.value
    )
    constraints = (
        draw(st.sets(st.sampled_from(head_vars), max_size=len(head_vars)))
        if head_vars
        else frozenset()
    )
    return head_body_query(head=head, body=body, constraints=constraints)


_QUERY_STREAMS = st.lists(
    st.tuples(cache_queries(), st.sampled_from(["union", "merge"])),
    min_size=1,
    max_size=4,
)


def _run_parity(ops, queries, **cache_kwargs):
    store = TripleStore()
    store.enable_query_cache(**cache_kwargs)
    model = {"default": set()}
    for op in ops:
        _apply(store, model, op)
        union = RDFGraph(_union(model))
        for q, semantics in queries:
            assert store.query(q, semantics=semantics) == answers(
                q, union, semantics=semantics
            )


@settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(ops=_ops(), queries=_QUERY_STREAMS)
def test_cached_answers_equal_uncached_under_update_streams(ops, queries):
    _run_parity(ops, queries)


@settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(ops=_ops(), queries=_QUERY_STREAMS)
def test_parity_survives_tiny_budgets_and_eviction(ops, queries):
    """Constant eviction pressure must never change an answer."""
    _run_parity(ops, queries, max_bytes=2048, max_entries=2, max_plans=2)


@settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(ops=_ops(), queries=_QUERY_STREAMS)
def test_parity_with_plan_tier_only(ops, queries):
    """answer_cache=False degrades to plan reuse; answers unchanged."""
    _run_parity(ops, queries, answer_cache=False)


# ----------------------------------------------------------------------
# Unit tests: counters, serving tiers, invalidation precision
# ----------------------------------------------------------------------


def _t(s, p, o):
    return Triple(URI(s), URI(p), URI(o))


def _ground_store():
    store = TripleStore()
    store.add(_t("a", "p", "b"))
    store.add(_t("b", "p", "c"))
    store.add(_t("c", "q", "d"))
    return store


def test_exact_hit_counters():
    store = _ground_store()
    store.enable_query_cache()
    q = head_body_query(head=[("?x", "p", "?y")], body=[("?x", "p", "?y")])
    first = store.query(q)
    second = store.query(q)
    assert first == second
    assert store.metrics.counter(MISSES) == 1
    assert store.metrics.counter(HITS) == 1


def test_containment_serving_from_general_entry():
    """A cached general query serves its specializations by filtering."""
    store = _ground_store()
    store.enable_query_cache()
    general = head_body_query(
        head=[("?x", "?r", "?y")], body=[("?x", "?r", "?y")]
    )
    store.query(general)
    specialized = head_body_query(
        head=[("?x", "p", "?y")], body=[("?x", "p", "?y")]
    )
    got = store.query(specialized)
    assert store.metrics.counter(CONTAINMENT_HITS) == 1
    assert store.metrics.counter(MISSES) == 1  # only the general query
    assert got == answers(specialized, store.dataset())


def test_identity_body_serves_head_and_semantics_variants():
    store = _ground_store()
    store.enable_query_cache()
    q1 = head_body_query(head=[("?x", "p", "?y")], body=[("?x", "p", "?y")])
    store.query(q1)
    # Same body, different head (blank) and different semantics: served
    # from the entry's valuations, not re-searched.
    q2 = head_body_query(
        head=[(BNode("n"), URI("made"), Variable("y"))],
        body=[("?x", "p", "?y")],
    )
    got = store.query(q2, semantics="merge")
    assert store.metrics.counter(MISSES) == 1
    assert store.metrics.counter(CONTAINMENT_HITS) == 1
    assert got == answers(q2, store.dataset(), semantics="merge")


def test_plan_reuse_across_alpha_variants():
    store = _ground_store()
    store.enable_query_cache(answer_cache=False)
    q1 = head_body_query(head=[("?x", "p", "?y")], body=[("?x", "p", "?y")])
    q2 = head_body_query(head=[("?u", "p", "?w")], body=[("?u", "p", "?w")])
    a1 = store.query(q1)
    a2 = store.query(q2)
    assert a1 == a2  # alpha-variant heads instantiate identically here
    assert store.metrics.counter(PLAN_HITS) == 1
    assert store.metrics.counter(MISSES) == 2  # answer tier is off


def test_canonical_body_parameterizes_constants():
    b1 = head_body_query(head=[("?x", "p", "b")], body=[("?x", "p", "b")]).body
    b2 = head_body_query(head=[("?u", "q", "d")], body=[("?u", "q", "d")]).body
    s1, c1, _ = canonical_body(b1)
    s2, c2, _ = canonical_body(b2)
    assert s1 == s2  # same shape ...
    assert c1 != c2  # ... different constant vector


def test_selective_invalidation_keeps_unrelated_entries():
    store = _ground_store()
    store.enable_query_cache()
    q = head_body_query(head=[("?x", "p", "?y")], body=[("?x", "p", "?y")])
    baseline = store.query(q)
    # A delta on an unrelated predicate must not drop the entry.
    store.add(_t("x", "unrelated", "y"))
    assert store.query(q) == baseline
    assert store.metrics.counter(INVALIDATIONS) == 0
    assert store.metrics.counter(HITS) == 1
    # A delta matching the entry's predicate must drop it — and the
    # re-answer must see the new row.
    store.add(_t("c", "p", "d"))
    updated = store.query(q)
    assert store.metrics.counter(INVALIDATIONS) > 0
    assert updated != baseline
    assert updated == answers(q, store.dataset())


def test_rdfs_delta_invalidates_derived_matches():
    """A schema insert whose *derived* rows match an entry must drop it."""
    store = TripleStore()
    store.add(_t("frida", TYPE.value, "painter"))
    store.enable_query_cache()
    q = head_body_query(
        head=[("?x", TYPE.value, "artist")],
        body=[("?x", TYPE.value, "artist")],
    )
    assert len(store.query(q)) == 0
    # The insert is (painter, sc, artist) — no cached body mentions sc,
    # but DRed's closure delta contains (frida, type, artist), which
    # does match the entry pattern.
    store.add(_t("painter", SC.value, "artist"))
    assert len(store.query(q)) == 1
    assert store.query(q) == answers(q, store.dataset())


def test_blank_node_dataset_flushes_conservatively():
    store = _ground_store()
    store.enable_query_cache()
    q = head_body_query(head=[("?x", "p", "?y")], body=[("?x", "p", "?y")])
    baseline = store.query(q)
    # Dataset gains a blank: core folding could now propagate deltas
    # across predicates, so any change flushes everything.
    store.add(Triple(URI("s"), URI("zzz"), BNode("B")))
    assert store.query(q) == answers(q, store.dataset())
    assert store.metrics.counter(INVALIDATIONS) > 0
    assert baseline == store.query(q)  # still correct, just re-evaluated


def test_eviction_under_entry_cap():
    store = _ground_store()
    store.enable_query_cache(max_entries=1)
    q1 = head_body_query(head=[("?x", "p", "?y")], body=[("?x", "p", "?y")])
    q2 = head_body_query(head=[("?x", "q", "?y")], body=[("?x", "q", "?y")])
    a1, a2 = store.query(q1), store.query(q2)
    assert store.metrics.counter(EVICTIONS) >= 1
    assert len(store.query_cache) == 1
    # Evicted entries re-evaluate correctly.
    assert store.query(q1) == a1
    assert store.query(q2) == a2


def test_disable_and_reenable():
    store = _ground_store()
    q = head_body_query(head=[("?x", "p", "?y")], body=[("?x", "p", "?y")])
    plain = store.query(q)
    store.enable_query_cache()
    assert store.query(q) == plain
    store.disable_query_cache()
    assert store.query_cache is None
    assert store.query(q) == plain


def test_version_bumps_on_effective_deltas_only():
    store = _ground_store()
    v0 = store.version
    store.closure()
    store.add(_t("new", "p", "row"))
    store.normal_form()
    v1 = store.version
    assert v1 > v0
    # Re-adding an existing triple is a no-op: no flush, no bump.
    store.add(_t("new", "p", "row"))
    store.normal_form()
    assert store.version == v1


def test_premise_queries_bypass_cache():
    store = _ground_store()
    store.enable_query_cache()
    q = head_body_query(
        head=[("?x", "p", "?y")],
        body=[("?x", "p", "?y")],
        premise=RDFGraph([_t("extra", "p", "fact")]),
    )
    got = store.query(q)
    assert got == answers(q, store.dataset())
    assert store.metrics.counter(MISSES) == 0  # never entered the cache


def test_frozen_prefix_uris_cannot_poison_certificates():
    """User URIs in the reserved frozen namespace stay constants in the
    cache's certificate search (the satellite collision guard)."""
    evil = URI("urn:frozen-var:V0")
    store = TripleStore()
    store.add(Triple(URI("s"), URI("p"), evil))
    store.add(Triple(URI("s"), URI("p"), URI("plain")))
    store.enable_query_cache()
    general = head_body_query(
        head=[("?V0", "p", "?V1")], body=[("?V0", "p", "?V1")]
    )
    store.query(general)
    # Specialization onto the adversarial constant: served by filtering
    # the general entry; the constant must not thaw into ?V0.
    q = head_body_query(head=[("?V0", "p", evil)], body=[("?V0", "p", evil)])
    got = store.query(q)
    assert store.metrics.counter(CONTAINMENT_HITS) == 1
    assert got == answers(q, store.dataset())
    assert len(got) == 1


def test_query_cache_standalone_counts_through_hook():
    counts = {}

    def hook(name, amount=1):
        counts[name] = counts.get(name, 0) + amount

    cache = QueryCache(count=hook)
    store = _ground_store()
    target = store.normal_form()
    q = head_body_query(head=[("?x", "p", "?y")], body=[("?x", "p", "?y")])
    first = cache.answer(q, "union", target, 0)
    second = cache.answer(q, "union", target, 0)
    assert first == second == answers(q, store.dataset())
    assert counts[MISSES] == 1 and counts[HITS] == 1
    cache.invalidate_all()
    assert counts[INVALIDATIONS] > 0
    assert len(cache) == 0
