"""Tests for redundancy elimination in answers (Section 6.2)."""

import pytest

from repro.core import BNode, RDFGraph, Variable, triple
from repro.minimize import is_lean
from repro.query import (
    answer_merge,
    answer_union,
    head_body_query,
    merge_answer_is_lean,
    merge_is_lean_given_answers,
    pre_answers,
    reduced_answer,
    union_answer_is_lean,
)
from repro.semantics import equivalent


def lean_database_producing_redundant_answer():
    """Example 3.8's G2 as database; the identity-ish query makes G1."""
    X, Y = BNode("X"), BNode("Y")
    return RDFGraph(
        [
            triple("a", "p", X),
            triple("a", "p", Y),
            triple(X, "q", Y),
            triple(Y, "r", "b"),
        ]
    )


def select_p_query():
    return head_body_query(head=[("?Z", "p", "?U")], body=[("?Z", "p", "?U")])


class TestSection62Examples:
    def test_lean_db_lean_query_redundant_answer(self):
        d = lean_database_producing_redundant_answer()
        q = select_p_query()
        assert is_lean(d)
        union = answer_union(q, d)
        assert not is_lean(union)
        assert not union_answer_is_lean(q, d)

    def test_non_lean_body_example(self):
        # B = (?Dept, offers, "DB"), (?Dept, offers, ?Course): the body
        # is not lean as a pattern, yet not replaceable by its lean part.
        from repro.core import Literal

        db_lit = Literal("DB")
        q = head_body_query(
            head=[("theory", "covers", "?Course")],
            body=[("?Dept", "offers", db_lit), ("?Dept", "offers", "?Course")],
        )
        d = RDFGraph(
            [
                triple("cs", "offers", db_lit),
                triple("cs", "offers", "algorithms"),
                triple("ee", "offers", "circuits"),
            ]
        )
        q_lean_body = head_body_query(
            head=[("theory", "covers", "?Course")],
            body=[("?Dept", "offers", "?Course")],
        )
        full = answer_union(q, d)
        lean_body_answer = answer_union(q_lean_body, d)
        # The lean-body query also returns courses of departments that
        # do not offer "DB" — the two queries are NOT equivalent.
        assert triple("theory", "covers", "circuits") not in full
        assert triple("theory", "covers", "circuits") in lean_body_answer

    def test_reduced_answer_is_lean_and_equivalent(self):
        d = lean_database_producing_redundant_answer()
        q = select_p_query()
        reduced = reduced_answer(q, d, semantics="union")
        assert is_lean(reduced)
        assert equivalent(reduced, answer_union(q, d))


class TestMergeLeanness:
    def test_merge_algorithm_agrees_with_general_check(self):
        d = lean_database_producing_redundant_answer()
        q = select_p_query()
        fast = merge_answer_is_lean(q, d)
        slow = is_lean(answer_merge(q, d))
        assert fast == slow

    def test_agreement_on_many_cases(self):
        from repro.generators import random_simple_rdf_graph

        q = select_p_query()
        for seed in range(8):
            d = random_simple_rdf_graph(6, 5, blank_probability=0.5, seed=seed)
            if not d.count(p=None):
                continue
            fast = merge_answer_is_lean(q, d)
            slow = is_lean(answer_merge(q, d))
            assert fast == slow, f"seed={seed}"

    def test_merge_lean_given_answers_direct(self):
        X = BNode("X")
        ground = RDFGraph([triple("a", "p", "b")])
        blankish = RDFGraph([triple("a", "p", X)])
        # Merged, the blank answer maps onto the ground one: non-lean.
        assert not merge_is_lean_given_answers([ground, blankish])
        # Alone, each is lean.
        assert merge_is_lean_given_answers([ground])
        assert merge_is_lean_given_answers([blankish])

    def test_merge_of_isomorphic_blank_answers(self):
        X = BNode("X")
        a1 = RDFGraph([triple("a", "p", X)])
        a2 = RDFGraph([triple("a", "p", BNode("Y")), triple("c", "q", BNode("Y"))])
        # a1 maps onto a2's first triple's blank: merged is non-lean.
        assert not merge_is_lean_given_answers([a1, a2])

    def test_merge_of_incomparable_answers_lean(self):
        a1 = RDFGraph([triple("a", "p", BNode("X")), triple(BNode("X"), "s", "u")])
        a2 = RDFGraph([triple("c", "q", BNode("Y")), triple(BNode("Y"), "t", "v")])
        assert merge_is_lean_given_answers([a1, a2])

    def test_ground_answers_always_lean(self):
        answers = [RDFGraph([triple("a", "p", "b")]), RDFGraph([triple("c", "q", "d")])]
        assert merge_is_lean_given_answers(answers)


class TestAnswerSizeBound:
    def test_answer_count_bounded_by_d_to_the_q(self):
        # |preans(q, D)| ≤ |nf(D)|^|vars(q)| (Section 6.1's remark).
        from repro.query.matching import matching_target

        d = RDFGraph(
            [triple("a", "p", "b"), triple("b", "p", "c"), triple("c", "p", "a")]
        )
        q = head_body_query(
            head=[("?X", "sel", "?Y")], body=[("?X", "p", "?Y")]
        )
        found = pre_answers(q, d)
        bound = len(matching_target(d, q.premise)) ** 2
        assert len(found) <= bound

    def test_lean_head_advice(self):
        # A non-lean head duplicates information in every answer.
        X = BNode("N1")
        q_nonlean_head = head_body_query(
            head=[("?X", "made", BNode("N1")), ("?X", "made", BNode("N2"))],
            body=[("?X", "p", "?Y")],
        )
        d = RDFGraph([triple("a", "p", "b")])
        answers = pre_answers(q_nonlean_head, d)
        assert len(answers) == 1
        assert not is_lean(answers[0])
