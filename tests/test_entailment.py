"""Tests for entailment (Theorems 2.8, 2.9, 2.10 and the CQ bridge)."""

import pytest
from hypothesis import given, settings

from repro.core import BNode, RDFGraph, URI, find_map, triple
from repro.core.vocabulary import DOM, RANGE, SC, SP, TYPE
from repro.generators import art_schema
from repro.reductions import DiGraph, encode_graph, homomorphic_direct
from repro.relational import simple_entails_acyclic, simple_entails_via_cq
from repro.semantics import (
    closure,
    entailment_witness,
    entails,
    entails_by_model,
    equivalent,
    simple_entails,
    simple_equivalent,
)

from .strategies import rdfs_graphs, simple_graphs


class TestSimpleEntailment:
    def test_subgraph_entailed(self):
        g = RDFGraph([triple("a", "p", "b"), triple("b", "q", "c")])
        assert simple_entails(g, RDFGraph([triple("a", "p", "b")]))

    def test_blank_generalization_entailed(self):
        g = RDFGraph([triple("a", "p", "b")])
        h = RDFGraph([triple("a", "p", BNode("X"))])
        assert simple_entails(g, h)
        assert not simple_entails(h, g)  # the blank does not name b

    def test_blank_join_requires_common_node(self):
        X = BNode("X")
        h = RDFGraph([triple("a", "p", X), triple(X, "q", "c")])
        g_joined = RDFGraph([triple("a", "p", "b"), triple("b", "q", "c")])
        g_split = RDFGraph([triple("a", "p", "b"), triple("d", "q", "c")])
        assert simple_entails(g_joined, h)
        assert not simple_entails(g_split, h)

    def test_empty_graph_entailed_by_all(self):
        assert simple_entails(RDFGraph(), RDFGraph())
        assert simple_entails(RDFGraph([triple("a", "p", "b")]), RDFGraph())

    def test_reflexive(self):
        g = RDFGraph([triple("a", "p", BNode("X"))])
        assert simple_entails(g, g)

    def test_transitive(self):
        g1 = RDFGraph([triple("a", "p", "b")])
        g2 = RDFGraph([triple("a", "p", BNode("X"))])
        g3 = RDFGraph([triple(BNode("Y"), "p", BNode("X"))])
        assert simple_entails(g1, g2) and simple_entails(g2, g3)
        assert simple_entails(g1, g3)

    @settings(max_examples=50, deadline=None)
    @given(simple_graphs(max_size=4), simple_graphs(max_size=3))
    def test_matches_cq_evaluation(self, g1, g2):
        assert simple_entails(g1, g2) == simple_entails_via_cq(g1, g2)

    @settings(max_examples=50, deadline=None)
    @given(simple_graphs(max_size=4), simple_graphs(max_size=3))
    def test_matches_acyclic_pipeline_when_applicable(self, g1, g2):
        try:
            fast = simple_entails_acyclic(g1, g2)
        except ValueError:
            return  # cyclic: out of the special case's scope
        assert fast == simple_entails(g1, g2)


class TestRDFSEntailment:
    def test_subclass_typing(self, fig1):
        assert entails(fig1, RDFGraph([triple("Picasso", TYPE, "artist")]))
        assert entails(fig1, RDFGraph([triple("Guernica", TYPE, "artifact")]))
        assert entails(fig1, RDFGraph([triple("Picasso", "creates", "Guernica")]))

    def test_non_entailments(self, fig1):
        assert not entails(fig1, RDFGraph([triple("Picasso", TYPE, "sculptor")]))
        assert not entails(fig1, RDFGraph([triple("Guernica", TYPE, "sculpture")]))

    def test_blank_in_conclusion(self, fig1):
        X = BNode("X")
        # "someone paints something of type painting"
        h = RDFGraph([triple(X, "paints", BNode("Y")), triple(BNode("Y"), TYPE, "painting")])
        assert entails(fig1, h)

    def test_theorem_2_8_map_into_closure(self, fig1):
        h = RDFGraph([triple("Picasso", TYPE, "artist")])
        witness = entailment_witness(fig1, h)
        assert witness is not None
        assert witness.apply_graph(h).issubgraph(closure(fig1))

    def test_rdfs_entailment_not_simple(self):
        g = RDFGraph([triple("a", SC, "b"), triple("x", TYPE, "a")])
        h = RDFGraph([triple("x", TYPE, "b")])
        assert entails(g, h)
        assert not simple_entails(g, h)

    def test_equivalence(self):
        g = RDFGraph([triple("a", SC, "b"), triple("b", SC, "c")])
        h = g.union(RDFGraph([triple("a", SC, "c")]))
        assert equivalent(g, h)
        assert not equivalent(g, RDFGraph([triple("a", SC, "c")]))

    def test_reserved_sp_axioms_always_entailed(self):
        assert entails(RDFGraph(), RDFGraph([triple(SP, SP, SP)]))
        assert entails(RDFGraph(), RDFGraph([triple(TYPE, SP, TYPE)]))

    @settings(max_examples=30, deadline=None)
    @given(rdfs_graphs(max_size=4), rdfs_graphs(max_size=2))
    def test_matches_model_theory(self, g1, g2):
        assert entails(g1, g2) == entails_by_model(g1, g2)

    @settings(max_examples=30, deadline=None)
    @given(rdfs_graphs(max_size=4))
    def test_reflexivity(self, g):
        assert entails(g, g)

    @settings(max_examples=30, deadline=None)
    @given(rdfs_graphs(max_size=3), rdfs_graphs(max_size=3))
    def test_union_entails_both(self, g1, g2):
        u = g1.union(g2)
        assert entails(u, g1)
        assert entails(u, g2)


class TestFolkloreEncodings:
    """Theorem 2.9's reduction: hom(H, H') ⟺ enc(H') ⊨ enc(H)."""

    def test_odd_cycle_into_even(self):
        c3, c4 = DiGraph.cycle(3), DiGraph.cycle(4)
        assert not simple_entails(encode_graph(c4), encode_graph(c3))
        assert homomorphic_direct(c3, c4) is False

    def test_even_cycle_into_k2(self):
        c4 = DiGraph.cycle(4)
        k2 = DiGraph.complete(2)
        assert simple_entails(encode_graph(k2), encode_graph(c4))

    def test_random_graphs_match_direct_hom(self):
        from repro.generators import random_digraph

        for seed in range(8):
            h1 = random_digraph(4, 5, seed=seed)
            h2 = random_digraph(4, 6, seed=seed + 100)
            via_rdf = simple_entails(encode_graph(h2), encode_graph(h1))
            assert via_rdf == homomorphic_direct(h1, h2)

    def test_homomorphic_equivalence_matches(self):
        from repro.reductions import homomorphically_equivalent_via_rdf

        c6 = DiGraph.cycle(6)
        k2 = DiGraph.complete(2)
        assert homomorphically_equivalent_via_rdf(c6, k2)
        c5 = DiGraph.cycle(5)
        assert not homomorphically_equivalent_via_rdf(c5, k2)
