"""Cross-module integration scenarios.

Each test chains several subsystems end to end, the way the examples
do, asserting on final observable results — a regression net over the
module boundaries.
"""

import pytest

from repro.core import BNode, RDFGraph, URI, Variable, isomorphic, triple
from repro.core.vocabulary import DOM, RANGE, SC, SP, TYPE
from repro.generators import art_schema
from repro.minimize import core, normal_form
from repro.navigation import parse_path, reachable_from
from repro.query import (
    View,
    ViewCatalog,
    answer_union,
    build_path_query,
    contained_standard,
    head_body_query,
    path_atom,
    premise_elimination,
)
from repro.rdfio import parse_ntriples, serialize_ntriples
from repro.rdfio.query_syntax import parse_query, serialize_query
from repro.semantics import closure, entails, equivalent, rho_closure
from repro.store import TripleStore


class TestFileToAnswerPipeline:
    """parse → store → reason → query → serialize, all via text."""

    DATA = """
    painter sc artist .
    paints sp creates .
    paints dom painter .
    frida paints autorretrato .
    _:unknown paints mural .
    """

    QUERY = """
    CONSTRUCT { ?X profession painter . }
    WHERE { ?X type painter . }
    BOUND ?X
    """

    def test_pipeline(self):
        store = TripleStore()
        store.add_all(parse_ntriples(self.DATA))
        q = parse_query(self.QUERY)
        result = store.query(q)
        # The BOUND constraint drops the blank painter.
        assert result == RDFGraph([triple("frida", "profession", "painter")])
        text = serialize_ntriples(result)
        assert parse_ntriples(text) == result

    def test_pipeline_without_constraint_sees_blank(self):
        store = TripleStore()
        store.add_all(parse_ntriples(self.DATA))
        q = parse_query(
            "CONSTRUCT { ?X profession painter . } WHERE { ?X type painter . }"
        )
        result = store.query(q)
        assert len(result) == 2
        assert result.bnodes()


class TestNormalizationThenQuery:
    def test_equivalent_stores_give_isomorphic_answers(self):
        # Two syntactically different but equivalent datasets.
        d1 = RDFGraph(
            [
                triple("a", SC, "b"),
                triple("b", SC, "c"),
                triple("a", SC, "c"),
                triple("x", TYPE, "a"),
            ]
        )
        N = BNode("N")
        d2 = RDFGraph(
            [
                triple("a", SC, "b"),
                triple("b", SC, "c"),
                triple("a", SC, N),
                triple(N, SC, "c"),
                triple("x", TYPE, "a"),
            ]
        )
        assert equivalent(d1, d2)
        q = head_body_query(head=[("?X", TYPE, "?C")], body=[("?X", TYPE, "?C")])
        assert isomorphic(answer_union(q, d1), answer_union(q, d2))

    def test_core_then_closure_roundtrip(self):
        g = art_schema()
        assert equivalent(core(closure(g)), g)
        assert equivalent(closure(core(g)), g)


class TestPathsOverStoreOverViews:
    def test_three_layer_stack(self):
        store = TripleStore()
        store.add_all(art_schema())
        store.add(triple("Rodin", "sculpts", "TheThinker"))
        closed = store.closure()

        catalog = ViewCatalog(
            [
                View(
                    name="makers",
                    query=head_body_query(
                        head=[("?A", "madeSomething", "true")],
                        body=[("?A", "creates", "?W")],
                    ),
                )
            ]
        )
        from repro.navigation import evaluate_path

        extended = catalog.extended_database(closed)
        # Navigate from the view-produced triples.
        expr = parse_path("madeSomething")
        makers = {x for x, _y in evaluate_path(expr, extended)}
        assert URI("Picasso") in makers
        assert URI("Rodin") in makers

    def test_path_query_over_store_closure(self):
        store = TripleStore()
        store.add_all(art_schema())
        q = build_path_query(
            head=[("?X", "kind", "?C")],
            path_atoms=[path_atom("?X", "type/sc+", "?C")],
        )
        result = q.answer_union(store.dataset())
        assert triple("Picasso", "kind", "artist") in result


class TestPremiseEliminationRoundTrip:
    def test_omega_members_serialize_and_reparse(self):
        q = head_body_query(
            head=[("?X", "p", "?Y")],
            body=[("?X", "q", "?Y"), ("?Y", "t", "s")],
            premise=RDFGraph([triple("a", "t", "s")]),
        )
        for member in premise_elimination(q):
            text = serialize_query(member)
            assert parse_query(text) == member

    def test_omega_containment_consistency(self):
        q = head_body_query(
            head=[("?X", "p", "?Y")],
            body=[("?X", "q", "?Y"), ("?Y", "t", "s")],
            premise=RDFGraph([triple("a", "t", "s")]),
        )
        wide = head_body_query(head=[("?X", "p", "?Y")], body=[("?X", "q", "?Y")])
        # The full decider and the member-wise decomposition agree.
        member_wise = all(
            contained_standard(m, wide) for m in premise_elimination(q)
        )
        assert contained_standard(q, wide) == member_wise


class TestRhoVsFullInStore:
    def test_rho_closure_of_store_dataset(self):
        store = TripleStore()
        store.add_all(art_schema())
        rho = rho_closure(store.dataset())
        full = store.closure()
        assert rho.issubgraph(full)
        # Every informative (non-reflexive) conclusion agrees.
        for t in full:
            if t.p in (SP, SC) and t.s == t.o:
                continue
            assert t in rho, t


class TestProofAuditTrail:
    def test_entailment_with_checkable_proof_and_countermodel(self):
        from repro.semantics import construct_proof, find_countermodel

        g = art_schema()
        good = RDFGraph([triple("Guernica", TYPE, "artifact")])
        bad = RDFGraph([triple("Guernica", TYPE, "museum")])
        proof = construct_proof(g, good)
        assert proof is not None and proof.verify()
        assert find_countermodel(g, good) is None
        assert construct_proof(g, bad) is None
        model = find_countermodel(g, bad)
        assert model is not None and model.is_rdfs_interpretation()
