"""Unit tests for the deductive system rules (Section 2.3.2)."""

import pytest

from repro.core import BNode, RDFGraph, Triple, URI, triple
from repro.core.vocabulary import DOM, RANGE, SC, SP, TYPE
from repro.semantics.rules import (
    ALL_RULES,
    RULE_2,
    RULE_3,
    RULE_4,
    RULE_5,
    RULE_6,
    RULE_7,
    RULE_8,
    RULE_11,
    RULE_13,
    RULES_9,
    RULES_10,
    RULES_12,
    RULES_BY_NAME,
    apply_rules_once,
    apply_rules_to_fixpoint,
    iter_rule_instantiations,
)


def conclusions_of(rule, graph):
    out = set()
    for inst in iter_rule_instantiations(rule, graph):
        out.update(inst.conclusion_triples())
    return out


class TestIndividualRules:
    def test_rule_2_sp_transitivity(self):
        graph = RDFGraph([triple("a", SP, "b"), triple("b", SP, "c")])
        assert triple("a", SP, "c") in conclusions_of(RULE_2, graph)

    def test_rule_3_sp_inheritance(self):
        graph = RDFGraph([triple("p", SP, "q"), triple("x", "p", "y")])
        assert triple("x", "q", "y") in conclusions_of(RULE_3, graph)

    def test_rule_3_blocks_blank_predicates(self):
        # (a, sp, X) cannot lift (x, a, y) to a blank predicate.
        X = BNode("X")
        graph = RDFGraph([triple("a", SP, X), triple("x", "a", "y")])
        assert not any(
            not t.is_valid_rdf() for t in conclusions_of(RULE_3, graph)
        )
        assert Triple(URI("x"), X, URI("y")) not in conclusions_of(RULE_3, graph)

    def test_rule_4_sc_transitivity(self):
        graph = RDFGraph([triple("a", SC, "b"), triple("b", SC, "c")])
        assert triple("a", SC, "c") in conclusions_of(RULE_4, graph)

    def test_rule_5_type_lifting(self):
        graph = RDFGraph([triple("a", SC, "b"), triple("x", TYPE, "a")])
        assert triple("x", TYPE, "b") in conclusions_of(RULE_5, graph)

    def test_rule_6_domain(self):
        graph = RDFGraph(
            [triple("p", DOM, "c"), triple("p", SP, "p"), triple("x", "p", "y")]
        )
        assert triple("x", TYPE, "c") in conclusions_of(RULE_6, graph)

    def test_rule_6_through_subproperty(self):
        # Marin's fix: the dom axiom applies to uses of subproperties.
        graph = RDFGraph(
            [triple("p", DOM, "c"), triple("q", SP, "p"), triple("x", "q", "y")]
        )
        assert triple("x", TYPE, "c") in conclusions_of(RULE_6, graph)

    def test_rule_6_blank_property(self):
        # The property may be a blank node standing for a property.
        X = BNode("X")
        graph = RDFGraph(
            [triple(X, DOM, "c"), triple("q", SP, X), triple("x", "q", "y")]
        )
        assert triple("x", TYPE, "c") in conclusions_of(RULE_6, graph)

    def test_rule_7_range(self):
        graph = RDFGraph(
            [triple("p", RANGE, "c"), triple("p", SP, "p"), triple("x", "p", "y")]
        )
        assert triple("y", TYPE, "c") in conclusions_of(RULE_7, graph)

    def test_rule_8_predicate_reflexivity(self):
        graph = RDFGraph([triple("x", "p", "y")])
        assert triple("p", SP, "p") in conclusions_of(RULE_8, graph)

    def test_rules_9_axioms(self):
        graph = RDFGraph()
        produced = set()
        for rule in RULES_9:
            produced |= conclusions_of(rule, graph)
        assert produced == {
            triple(p, SP, p) for p in (SP, SC, TYPE, DOM, RANGE)
        }

    def test_rules_10_dom_range_subjects(self):
        graph = RDFGraph([triple("p", DOM, "c")])
        produced = set()
        for rule in RULES_10:
            produced |= conclusions_of(rule, graph)
        assert triple("p", SP, "p") in produced

    def test_rule_11_sp_endpoint_reflexivity(self):
        graph = RDFGraph([triple("a", SP, "b")])
        produced = conclusions_of(RULE_11, graph)
        assert triple("a", SP, "a") in produced
        assert triple("b", SP, "b") in produced

    def test_rules_12_object_class_reflexivity(self):
        graph = RDFGraph(
            [triple("x", TYPE, "c"), triple("p", DOM, "d"), triple("p", RANGE, "e")]
        )
        produced = set()
        for rule in RULES_12:
            produced |= conclusions_of(rule, graph)
        assert {triple("c", SC, "c"), triple("d", SC, "d"), triple("e", SC, "e")} <= produced

    def test_rule_13_sc_endpoint_reflexivity(self):
        graph = RDFGraph([triple("a", SC, "b")])
        produced = conclusions_of(RULE_13, graph)
        assert triple("a", SC, "a") in produced
        assert triple("b", SC, "b") in produced


class TestInstantiations:
    def test_instantiation_records_premises(self):
        graph = RDFGraph([triple("a", SP, "b"), triple("b", SP, "c")])
        insts = list(iter_rule_instantiations(RULE_2, graph))
        assert insts
        for inst in insts:
            assert all(t in graph for t in inst.premise_triples())

    def test_uniform_replacement(self):
        # The same rule variable must take the same value everywhere.
        graph = RDFGraph([triple("a", SP, "b"), triple("c", SP, "d")])
        for inst in iter_rule_instantiations(RULE_2, graph):
            assignment = inst.assignment_dict
            # Premises must chain through the same middle term B.
            (p1, p2) = inst.premise_triples()
            assert p1.o == p2.s

    def test_all_rules_enumerable(self):
        assert len(ALL_RULES) == 7 + 5 + 2 + 1 + 3 + 1
        assert RULES_BY_NAME["(2)"] is RULE_2

    def test_rule_str(self):
        assert "(2)" in str(RULE_2)
        assert "sp" in str(RULE_2)


class TestEngine:
    def test_apply_once_returns_only_new(self):
        graph = RDFGraph([triple("a", SP, "b"), triple("b", SP, "c")])
        produced = apply_rules_once(graph)
        assert triple("a", SP, "c") in produced
        assert triple("a", SP, "b") not in produced

    def test_fixpoint_is_closed(self):
        graph = RDFGraph([triple("a", SC, "b"), triple("x", TYPE, "a")])
        closed, trace = apply_rules_to_fixpoint(graph)
        assert not apply_rules_once(closed)
        assert triple("x", TYPE, "b") in closed
        # The trace justifies every derived triple.
        derived = closed - graph
        assert {t for t, _ in trace} == set(derived.triples)

    def test_trace_steps_are_valid_in_order(self):
        graph = RDFGraph([triple("a", SP, "b"), triple("b", SP, "c"), triple("x", "a", "y")])
        closed, trace = apply_rules_to_fixpoint(graph)
        current = graph
        for t, inst in trace:
            assert all(p in current for p in inst.premise_triples())
            assert t in inst.conclusion_triples()
            current = current.union(RDFGraph(inst.conclusion_triples()))
        assert current == closed

    def test_long_chain_transitivity(self):
        graph = RDFGraph(
            [triple(f"p{i}", SP, f"p{i+1}") for i in range(5)]
        )
        closed, _ = apply_rules_to_fixpoint(graph)
        assert triple("p0", SP, "p5") in closed
