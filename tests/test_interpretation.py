"""Tests for the model theory (Section 2.3.1) and canonical models."""

import pytest
from hypothesis import given, settings

from repro.core import BNode, RDFGraph, URI, triple
from repro.core.vocabulary import DOM, RANGE, SC, SP, TYPE
from repro.generators import art_schema
from repro.semantics import (
    Interpretation,
    canonical_model,
    entails,
    models,
    satisfies_simple,
)
from repro.semantics.interpretation import find_blank_assignment

from .strategies import rdfs_graphs


def tiny_interpretation():
    """A hand-built RDFS interpretation over a two-element world."""
    a, b = "ra", "rb"
    p = "rp"
    c, d = "rc", "rd"
    sp_r, sc_r, type_r, dom_r, range_r = "r_sp", "r_sc", "r_type", "r_dom", "r_range"
    prop = {p, sp_r, sc_r, type_r, dom_r, range_r}
    klass = {c, d}
    res = {a, b, c, d, p} | prop | klass
    pext = {
        p: {(a, b)},
        sp_r: {(q, q) for q in prop},
        sc_r: {(c, c), (d, d), (c, d)},
        type_r: {(a, c), (a, d)},
        dom_r: set(),
        range_r: set(),
    }
    cext = {c: {a}, d: {a}}
    int_map = {
        URI("a"): a,
        URI("b"): b,
        URI("p"): p,
        URI("c"): c,
        URI("d"): d,
        SP: sp_r,
        SC: sc_r,
        TYPE: type_r,
        DOM: dom_r,
        RANGE: range_r,
    }
    return Interpretation(
        res=res, prop=prop, klass=klass, pext=pext, cext=cext, int_map=int_map
    )


class TestStructuralConditions:
    def test_tiny_interpretation_is_rdfs(self):
        interp = tiny_interpretation()
        assert interp.structural_violations() == []
        assert interp.is_rdfs_interpretation()

    def test_broken_sp_reflexivity_detected(self):
        interp = tiny_interpretation()
        interp.pext["r_sp"] = set()  # drop reflexivity
        assert any("reflexive" in v for v in interp.structural_violations())

    def test_broken_sc_transitivity_detected(self):
        interp = tiny_interpretation()
        interp.klass.add("re")
        interp.cext["re"] = {"ra"}
        interp.pext["r_sc"] |= {("re", "re"), ("rd", "re")}
        # rc sc rd sc re but (rc, re) missing → transitivity violation.
        violations = interp.structural_violations()
        assert any("transitive" in v for v in violations)

    def test_subclass_extension_inclusion_enforced(self):
        interp = tiny_interpretation()
        interp.cext["rd"] = set()  # rc sc rd but CExt(rc) ⊄ CExt(rd)
        violations = interp.structural_violations()
        assert any("despite sc" in v or "typing" in v for v in violations)

    def test_typing_iff_enforced(self):
        interp = tiny_interpretation()
        interp.pext["r_type"].add(("rb", "rc"))  # rb typed rc without CExt
        assert any("typing" in v for v in interp.structural_violations())

    def test_dom_violation_detected(self):
        interp = tiny_interpretation()
        interp.pext["r_dom"] = {("rp", "rd")}
        interp.cext["rd"] = set()
        interp.pext["r_type"] = set()
        interp.klass.discard("rc")
        interp.pext["r_sc"] = {("rd", "rd")}
        assert any("dom violated" in v for v in interp.structural_violations())

    def test_empty_domain_rejected(self):
        with pytest.raises(ValueError):
            Interpretation(
                res=set(), prop=set(), klass=set(), pext={}, cext={}, int_map={}
            )


class TestSatisfaction:
    def test_ground_triple_satisfied(self):
        interp = tiny_interpretation()
        assert satisfies_simple(interp, RDFGraph([triple("a", "p", "b")]))

    def test_ground_triple_not_satisfied(self):
        interp = tiny_interpretation()
        assert not satisfies_simple(interp, RDFGraph([triple("b", "p", "a")]))

    def test_blank_existential(self):
        interp = tiny_interpretation()
        assert satisfies_simple(interp, RDFGraph([triple("a", "p", BNode("X"))]))
        assert satisfies_simple(interp, RDFGraph([triple(BNode("X"), "p", BNode("Y"))]))

    def test_blank_consistency_across_triples(self):
        interp = tiny_interpretation()
        X = BNode("X")
        # X must be simultaneously object of p from a, and typed c:
        # (a,p,b) and type(a,c) exist but b is not typed — unsatisfiable.
        g = RDFGraph([triple("a", "p", X), triple(X, TYPE, "c")])
        assert not satisfies_simple(interp, g)

    def test_find_blank_assignment_witness(self):
        interp = tiny_interpretation()
        X = BNode("X")
        g = RDFGraph([triple("a", "p", X)])
        assignment = find_blank_assignment(interp, g)
        assert assignment == {X: "rb"}

    def test_unknown_uri_unsatisfied(self):
        interp = tiny_interpretation()
        assert not satisfies_simple(interp, RDFGraph([triple("zzz", "p", "b")]))

    def test_models_requires_both(self):
        interp = tiny_interpretation()
        assert models(interp, RDFGraph([triple("a", "p", "b")]))
        interp.pext["r_sp"] = set()
        assert not models(interp, RDFGraph([triple("a", "p", "b")]))


class TestCanonicalModel:
    def test_is_rdfs_interpretation(self, fig1):
        assert canonical_model(fig1).is_rdfs_interpretation()

    def test_satisfies_its_graph(self, fig1):
        assert satisfies_simple(canonical_model(fig1), fig1)

    def test_empty_graph_model(self):
        model = canonical_model(RDFGraph())
        assert model.is_rdfs_interpretation()

    @settings(max_examples=25, deadline=None)
    @given(rdfs_graphs(max_size=4))
    def test_canonical_model_is_model_random(self, g):
        model = canonical_model(g)
        assert model.is_rdfs_interpretation()
        assert satisfies_simple(model, g)

    def test_minimality_gives_entailment(self, fig1):
        # The canonical model satisfies exactly the entailed graphs.
        good = RDFGraph([triple("Picasso", TYPE, "artist")])
        bad = RDFGraph([triple("Picasso", TYPE, "sculptor")])
        model = canonical_model(fig1)
        assert satisfies_simple(model, good) == entails(fig1, good)
        assert satisfies_simple(model, bad) == entails(fig1, bad)


class TestCountermodels:
    def test_countermodel_on_non_entailment(self, fig1):
        from repro.core import RDFGraph, triple
        from repro.core.vocabulary import TYPE
        from repro.semantics import find_countermodel, satisfies_simple

        bad = RDFGraph([triple("Picasso", TYPE, "sculptor")])
        model = find_countermodel(fig1, bad)
        assert model is not None
        # The countermodel is a genuine RDFS model of fig1 ...
        assert model.is_rdfs_interpretation()
        assert satisfies_simple(model, fig1)
        # ... that does not satisfy the bad conclusion.
        assert not satisfies_simple(model, bad)

    def test_no_countermodel_on_entailment(self, fig1):
        from repro.core import RDFGraph, triple
        from repro.core.vocabulary import TYPE
        from repro.semantics import find_countermodel

        good = RDFGraph([triple("Picasso", TYPE, "artist")])
        assert find_countermodel(fig1, good) is None
