"""Tests for union queries and views (composition, Prop 5.9/5.11)."""

import pytest

from repro.core import RDFGraph, URI, Variable, triple
from repro.core.vocabulary import SC, TYPE
from repro.query import (
    UnionQuery,
    View,
    ViewCatalog,
    answer_union,
    contained_standard,
    head_body_query,
    unfold_query,
    union_contained_entailment,
    union_contained_standard,
)


def q_select(pred):
    return head_body_query(
        head=[("?X", pred, "?Y")], body=[("?X", pred, "?Y")]
    )


class TestUnionQueries:
    def test_answers_are_member_union(self):
        u = UnionQuery.of(q_select("p"), q_select("q"))
        d = RDFGraph([triple("a", "p", "b"), triple("c", "q", "d"), triple("e", "r", "f")])
        result = u.answers(d)
        assert triple("a", "p", "b") in result
        assert triple("c", "q", "d") in result
        assert triple("e", "r", "f") not in result

    def test_empty_union_rejected(self):
        with pytest.raises(ValueError):
            UnionQuery(members=())

    def test_from_premise_query_equivalence(self):
        q = head_body_query(
            head=[("?X", "p", "?Y")],
            body=[("?X", "q", "?Y"), ("?Y", "t", "s")],
            premise=RDFGraph([triple("a", "t", "s")]),
        )
        u = UnionQuery.from_premise_query(q)
        for d in (
            RDFGraph([triple("u", "q", "a")]),
            RDFGraph([triple("u", "q", "v"), triple("v", "t", "s")]),
        ):
            assert u.answers(d) == answer_union(q, d)

    def test_union_contained_left_splits(self):
        # ⋃ qi ⊑ q′ iff all members are (Proposition 5.11).
        u = UnionQuery.of(
            head_body_query(head=[("?X", "sel", "?X")], body=[("?X", "p", "a")]),
            head_body_query(head=[("?X", "sel", "?X")], body=[("?X", "p", "b")]),
        )
        wide = head_body_query(head=[("?X", "sel", "?X")], body=[("?X", "p", "?Y")])
        assert union_contained_standard(u, wide)
        narrow = head_body_query(head=[("?X", "sel", "?X")], body=[("?X", "p", "a")])
        assert not union_contained_standard(u, narrow)

    def test_single_query_in_union_right(self):
        q = head_body_query(head=[("?X", "sel", "?X")], body=[("?X", "p", "a")])
        u = UnionQuery.of(
            head_body_query(head=[("?X", "sel", "?X")], body=[("?X", "p", "a")]),
            head_body_query(head=[("?X", "sel", "?X")], body=[("?X", "q", "b")]),
        )
        assert union_contained_standard(q, u)
        assert union_contained_entailment(q, u)

    def test_entailment_containment_pools_members(self):
        # q's head needs two triples; each comes from a different member
        # of the union — only the pooled test can see it.
        q = head_body_query(
            head=[("?X", "r1", "?Y"), ("?X", "r2", "?Y")],
            body=[("?X", "p", "?Y")],
        )
        u = UnionQuery.of(
            head_body_query(head=[("?X", "r1", "?Y")], body=[("?X", "p", "?Y")]),
            head_body_query(head=[("?X", "r2", "?Y")], body=[("?X", "p", "?Y")]),
        )
        assert union_contained_entailment(q, u)
        # Standard containment needs one member to carry the whole head.
        assert not union_contained_standard(q, u)

    def test_plain_queries_pass_through(self):
        q = q_select("p")
        assert union_contained_standard(q, q)
        assert union_contained_entailment(q, q)

    def test_str(self):
        u = UnionQuery.of(q_select("p"), q_select("q"))
        assert "∪" in str(u)


ART_DATA = RDFGraph(
    [
        triple("painter", SC, "artist"),
        triple("frida", TYPE, "painter"),
        triple("frida", "paints", "autorretrato"),
        triple("diego", "paints", "mural"),
        triple("autorretrato", "exhibited", "MoMA"),
    ]
)


class TestViews:
    def make_catalog(self):
        creators = View(
            name="creators",
            query=head_body_query(
                head=[("?X", "created_something", "yes")],
                body=[("?X", "paints", "?Y")],
            ),
        )
        exhibited_works = View(
            name="exhibited_works",
            query=head_body_query(
                head=[("?W", "is_public", "yes")],
                body=[("?W", "exhibited", "?M")],
            ),
        )
        return ViewCatalog([creators, exhibited_works])

    def test_materialize(self):
        catalog = self.make_catalog()
        extension = catalog["creators"].materialize(ART_DATA)
        assert triple("frida", "created_something", "yes") in extension
        assert triple("diego", "created_something", "yes") in extension

    def test_duplicate_names_rejected(self):
        catalog = self.make_catalog()
        with pytest.raises(ValueError):
            catalog.add(View(name="creators", query=q_select("p")))

    def test_query_over_views(self):
        catalog = self.make_catalog()
        q = head_body_query(
            head=[("?X", "active_public_artist", "yes")],
            body=[
                ("?X", "created_something", "yes"),
                ("?X", "paints", "?W"),
                ("?W", "is_public", "yes"),
            ],
        )
        result = catalog.query(q, ART_DATA)
        assert result == RDFGraph([triple("frida", "active_public_artist", "yes")])

    def test_extended_database_contains_base(self):
        catalog = self.make_catalog()
        extended = catalog.extended_database(ART_DATA)
        assert ART_DATA.issubgraph(extended)

    def test_unfold_query(self):
        catalog = self.make_catalog()
        q = head_body_query(
            head=[("?X", "sel", "?X")],
            body=[("?X", "created_something", "yes")],
        )
        unfolded = unfold_query(q, catalog)
        # The view body replaces the view atom.
        predicates = {t.p for t in unfolded.body}
        assert URI("paints") in predicates
        assert URI("created_something") not in predicates
        # Unfolded query over base data = original query over views.
        assert answer_union(unfolded, ART_DATA) == catalog.query(q, ART_DATA)

    def test_unfold_leaves_base_atoms(self):
        catalog = self.make_catalog()
        q = head_body_query(
            head=[("?X", "sel", "?W")],
            body=[("?X", "created_something", "yes"), ("?X", "paints", "?W")],
        )
        unfolded = unfold_query(q, catalog)
        assert any(t.p == URI("paints") for t in unfolded.body)

    def test_unfold_containment_reasoning(self):
        # Containment of view queries via their unfoldings.
        catalog = self.make_catalog()
        q1 = head_body_query(
            head=[("?X", "sel", "?X")],
            body=[("?X", "created_something", "yes"), ("?X", "paints", "mural")],
        )
        q2 = head_body_query(
            head=[("?X", "sel", "?X")],
            body=[("?X", "created_something", "yes")],
        )
        assert contained_standard(unfold_query(q1, catalog), unfold_query(q2, catalog))

    def test_unfold_ambiguous_producer_rejected(self):
        catalog = self.make_catalog()
        catalog.add(
            View(
                name="creators2",
                query=head_body_query(
                    head=[("?X", "created_something", "maybe")],
                    body=[("?X", "sculpts", "?Y")],
                ),
            )
        )
        q = head_body_query(
            head=[("?X", "sel", "?X")], body=[("?X", "created_something", "yes")]
        )
        with pytest.raises(ValueError):
            unfold_query(q, catalog)

    def test_unfold_constant_clash_rejected(self):
        catalog = self.make_catalog()
        # The view head's object is the constant "yes"; asking for "no"
        # cannot unify.
        q = head_body_query(
            head=[("?X", "sel", "?X")], body=[("?X", "created_something", "no")]
        )
        with pytest.raises(ValueError):
            unfold_query(q, catalog)
