"""Tests for Proposition 4.5 and Theorem 4.6 (answer invariance)."""

import pytest
from hypothesis import given, settings

from repro.core import BNode, RDFGraph, Variable, isomorphic, triple
from repro.core.vocabulary import SC, SP, TYPE
from repro.query import answer_merge, answer_union, head_body_query
from repro.semantics import entails, equivalent

from .strategies import simple_graphs


def q_select_p():
    return head_body_query(head=[("?X", "p", "?Y")], body=[("?X", "p", "?Y")])


class TestProposition45Monotonicity:
    def test_union_monotone_on_entailment(self):
        q = q_select_p()
        d = RDFGraph([triple("a", "p", BNode("X"))])
        d_stronger = RDFGraph([triple("a", "p", "b")])
        assert entails(d_stronger, d)
        assert entails(answer_union(q, d_stronger), answer_union(q, d))

    def test_merge_monotone_on_entailment(self):
        q = q_select_p()
        d = RDFGraph([triple("a", "p", BNode("X"))])
        d_stronger = RDFGraph([triple("a", "p", "b"), triple("a", "p", "c")])
        assert entails(answer_merge(q, d_stronger), answer_merge(q, d))

    def test_union_entails_merge(self):
        # Proposition 4.5.2: ans∪(q, D) ⊨ ans+(q, D).
        X = BNode("X")
        d = RDFGraph([triple(X, "p", "a"), triple(X, "p", "b")])
        q = q_select_p()
        assert entails(answer_union(q, d), answer_merge(q, d))

    def test_merge_does_not_always_entail_union(self):
        # The converse fails when a blank bridges single answers
        # (Note 4.7's discussion).
        X = BNode("X")
        d = RDFGraph([triple(X, "p", "a"), triple(X, "p", "b")])
        q = q_select_p()
        assert not entails(answer_merge(q, d), answer_union(q, d))

    def test_rdfs_monotonicity(self):
        q = head_body_query(head=[("?X", TYPE, "?C")], body=[("?X", TYPE, "?C")])
        d = RDFGraph([triple("x", TYPE, "a")])
        d_stronger = RDFGraph([triple("x", TYPE, "a"), triple("a", SC, "b")])
        assert entails(
            answer_union(q, d_stronger), answer_union(q, d)
        )


class TestTheorem46EquivalenceInvariance:
    def test_equivalent_databases_same_answers(self):
        q = q_select_p()
        X = BNode("X")
        d1 = RDFGraph([triple("a", "p", "b"), triple("a", "p", X)])
        d2 = RDFGraph([triple("a", "p", "b")])
        assert equivalent(d1, d2)
        assert isomorphic(answer_union(q, d1), answer_union(q, d2))

    def test_equivalent_via_rdfs_semantics(self):
        q = head_body_query(head=[("?X", SC, "?Y")], body=[("?X", SC, "?Y")])
        d1 = RDFGraph(
            [triple("a", SC, "b"), triple("b", SC, "c"), triple("a", SC, "c")]
        )
        d2 = RDFGraph([triple("a", SC, "b"), triple("b", SC, "c")])
        assert equivalent(d1, d2)
        assert isomorphic(answer_union(q, d1), answer_union(q, d2))

    def test_example_3_17_databases(self, example_3_17_g, example_3_17_h):
        # The motivating case of Note 4.4: G and H are equivalent but a
        # (non-normalized) closure-based matching would differ.
        q = head_body_query(head=[("?X", SC, "?Y")], body=[("?X", SC, "?Y")])
        assert isomorphic(
            answer_union(q, example_3_17_g), answer_union(q, example_3_17_h)
        )

    def test_renamed_blanks_isomorphic_answers(self):
        q = q_select_p()
        X = BNode("X")
        d1 = RDFGraph([triple(X, "p", "a"), triple(X, "q", "b")])
        d2 = d1.rename_bnodes({X: BNode("Y")})
        assert isomorphic(answer_union(q, d1), answer_union(q, d2))

    @settings(max_examples=20, deadline=None)
    @given(simple_graphs(max_size=4))
    def test_invariance_under_adding_redundancy(self, d):
        # D ∪ (instance of part of D) is equivalent to D; answers must
        # be isomorphic.
        q = q_select_p()
        from repro.core import find_proper_endomorphism

        mu = find_proper_endomorphism(d)
        if mu is None:
            return
        d_equiv = d.union(mu.apply_graph(d))
        assert equivalent(d, d_equiv)
        assert isomorphic(answer_union(q, d), answer_union(q, d_equiv))
