"""Unit tests for :mod:`repro.core.maps` (maps and instances, Section 2.1)."""

import pytest

from repro.core import BNode, Literal, Map, RDFGraph, Triple, URI, identity_map, triple


class TestMapBasics:
    def test_identity_on_uris(self):
        m = Map({BNode("X"): URI("a")})
        assert m(URI("u")) == URI("u")
        assert m(Literal("l")) == Literal("l")

    def test_action_on_blanks(self):
        m = Map({BNode("X"): URI("a")})
        assert m(BNode("X")) == URI("a")
        assert m(BNode("Y")) == BNode("Y")  # unmentioned blanks fixed

    def test_domain_must_be_blanks(self):
        with pytest.raises(TypeError):
            Map({URI("a"): URI("b")})

    def test_image_must_be_ground_term(self):
        from repro.core import Variable

        with pytest.raises(TypeError):
            Map({BNode("X"): Variable("v")})

    def test_apply_triple(self):
        m = Map({BNode("X"): URI("a")})
        t = triple(BNode("X"), "p", "b")
        assert m(t) == triple("a", "p", "b")

    def test_apply_graph(self):
        X, Y = BNode("X"), BNode("Y")
        m = Map({X: URI("a"), Y: X})
        graph = RDFGraph([triple(X, "p", Y)])
        assert m(graph) == RDFGraph([triple("a", "p", X)])

    def test_apply_graph_can_shrink(self):
        X, Y = BNode("X"), BNode("Y")
        m = Map({X: URI("a"), Y: URI("a")})
        graph = RDFGraph([triple("c", "p", X), triple("c", "p", Y)])
        assert len(m(graph)) == 1

    def test_equality_ignores_explicit_fixed_points(self):
        assert Map({BNode("X"): BNode("X")}) == Map({})
        assert hash(Map({BNode("X"): BNode("X")})) == hash(Map({}))

    def test_identity_map(self):
        graph = RDFGraph([triple(BNode("X"), "p", "b")])
        assert identity_map()(graph) == graph


class TestComposition:
    def test_compose_order(self):
        X, Y = BNode("X"), BNode("Y")
        first = Map({X: Y})
        second = Map({Y: URI("a")})
        composed = second.compose(first)  # second ∘ first
        assert composed(X) == URI("a")

    def test_compose_keeps_outer_assignments(self):
        X, Y = BNode("X"), BNode("Y")
        outer = Map({Y: URI("b")})
        inner = Map({X: URI("a")})
        composed = outer.compose(inner)
        assert composed(X) == URI("a")
        assert composed(Y) == URI("b")


class TestInstances:
    def test_proper_instance_blank_to_uri(self):
        X = BNode("X")
        graph = RDFGraph([triple("a", "p", X)])
        m = Map({X: URI("b")})
        assert m.makes_proper_instance_of(graph)

    def test_proper_instance_identifying_blanks(self):
        X, Y = BNode("X"), BNode("Y")
        graph = RDFGraph([triple("a", "p", X), triple("a", "p", Y)])
        m = Map({X: Y})
        assert m.makes_proper_instance_of(graph)

    def test_renaming_is_not_proper(self):
        X, Z = BNode("X"), BNode("Z")
        graph = RDFGraph([triple("a", "p", X)])
        m = Map({X: Z})
        assert not m.makes_proper_instance_of(graph)

    def test_restrict(self):
        X, Y = BNode("X"), BNode("Y")
        m = Map({X: URI("a"), Y: URI("b")})
        restricted = m.restrict([X])
        assert restricted(X) == URI("a")
        assert restricted(Y) == Y

    def test_injectivity_check(self):
        X, Y = BNode("X"), BNode("Y")
        assert Map({X: URI("a"), Y: URI("b")}).is_injective_on([X, Y])
        assert not Map({X: URI("a"), Y: URI("a")}).is_injective_on([X, Y])

    def test_is_identity_on(self):
        X, Y = BNode("X"), BNode("Y")
        m = Map({X: URI("a")})
        assert m.is_identity_on([Y])
        assert not m.is_identity_on([X])

    def test_repr(self):
        m = Map({BNode("X"): URI("a")})
        assert "X" in repr(m) and "a" in repr(m)
