"""Tests for the reflexivity-free (ρdf-style) fragment."""

import pytest
from hypothesis import given, settings

from repro.core import BNode, RDFGraph, Triple, triple
from repro.core.vocabulary import DOM, RANGE, SC, SP, TYPE
from repro.generators import art_schema, random_schema_with_instances
from repro.semantics import (
    entails,
    is_reflexivity_free,
    rdfs_closure,
    reflexivity_padding,
    rho_closure,
    rho_entails,
    rho_equivalent,
)

from .strategies import rdfs_graphs


class TestRhoClosure:
    def test_sp_transitivity(self):
        g = RDFGraph([triple("a", SP, "b"), triple("b", SP, "c")])
        assert triple("a", SP, "c") in rho_closure(g)

    def test_no_reflexive_padding(self):
        g = RDFGraph([triple("x", "p", "y")])
        closed = rho_closure(g)
        assert triple("p", SP, "p") not in closed
        assert closed == g  # nothing to derive

    def test_direct_dom_rule(self):
        # Without reflexivity, (p, sp, p) is unavailable; the direct dom
        # rule must still fire.
        g = RDFGraph([triple("p", DOM, "c"), triple("x", "p", "y")])
        assert triple("x", TYPE, "c") in rho_closure(g)

    def test_dom_through_sp(self):
        g = RDFGraph(
            [triple("p", DOM, "c"), triple("q", SP, "p"), triple("x", "q", "y")]
        )
        assert triple("x", TYPE, "c") in rho_closure(g)

    def test_range_rules(self):
        g = RDFGraph([triple("p", RANGE, "c"), triple("x", "p", "y")])
        assert triple("y", TYPE, "c") in rho_closure(g)

    def test_type_lifting(self):
        g = RDFGraph([triple("a", SC, "b"), triple("x", TYPE, "a")])
        assert triple("x", TYPE, "b") in rho_closure(g)

    def test_smaller_than_full_closure(self):
        g = art_schema()
        assert len(rho_closure(g)) < len(rdfs_closure(g))

    def test_idempotent(self):
        g = art_schema()
        once = rho_closure(g)
        assert rho_closure(once) == once


class TestDecomposition:
    """RDFS-cl(G) = ρ-cl(G) ∪ reflexivity_padding(G)."""

    def test_art_schema(self):
        g = art_schema()
        assert rdfs_closure(g) == rho_closure(g).union(reflexivity_padding(g))

    def test_random_schemas(self):
        for seed in range(5):
            g = random_schema_with_instances(4, 3, 4, 6, seed=seed)
            assert rdfs_closure(g) == rho_closure(g).union(
                reflexivity_padding(g)
            ), seed

    def test_pathological_vocabulary(self):
        cases = [
            RDFGraph([triple("meta", SP, SP), triple("a", "meta", "b")]),
            RDFGraph([triple("p", DOM, SP), triple("u", "p", "v")]),
            RDFGraph([triple("a", SP, "a"), triple("x", "a", "y")]),
        ]
        for g in cases:
            assert rdfs_closure(g) == rho_closure(g).union(reflexivity_padding(g))

    @settings(max_examples=40, deadline=None)
    @given(rdfs_graphs(max_size=4))
    def test_random(self, g):
        assert rdfs_closure(g) == rho_closure(g).union(reflexivity_padding(g))

    def test_empty_graph(self):
        # All five rule-(9) axioms are padding.
        assert rho_closure(RDFGraph()) == RDFGraph()
        assert len(reflexivity_padding(RDFGraph())) == 5


class TestRhoEntailment:
    def test_sound_for_full_semantics(self):
        g = art_schema()
        h = RDFGraph([triple("Picasso", TYPE, "artist")])
        assert rho_entails(g, h)
        assert entails(g, h)

    def test_complete_on_reflexivity_free_conclusions(self):
        g = art_schema()
        probes = [
            RDFGraph([triple("Picasso", "creates", "Guernica")]),
            RDFGraph([triple("Guernica", TYPE, "artifact")]),
            RDFGraph([triple("sculptor", SC, "artist")]),
            RDFGraph([triple("Picasso", "creates", BNode("W"))]),
            RDFGraph([triple("zzz", TYPE, "artist")]),
        ]
        for h in probes:
            assert is_reflexivity_free(h)
            assert rho_entails(g, h) == entails(g, h), str(h)

    @settings(max_examples=30, deadline=None)
    @given(rdfs_graphs(max_size=4), rdfs_graphs(max_size=2))
    def test_agreement_random(self, g, h):
        if not is_reflexivity_free(h):
            return
        assert rho_entails(g, h) == entails(g, h)

    def test_incomplete_on_reflexive_conclusions(self):
        g = RDFGraph([triple("x", "p", "y")])
        h = RDFGraph([triple("p", SP, "p")])
        assert entails(g, h)  # rule (8)
        assert not rho_entails(g, h)  # the minimal system drops it

    def test_rho_equivalence(self):
        g = RDFGraph([triple("a", SC, "b"), triple("b", SC, "c")])
        h = g.union(RDFGraph([triple("a", SC, "c")]))
        assert rho_equivalent(g, h)

    def test_is_reflexivity_free(self):
        assert is_reflexivity_free(RDFGraph([triple("a", SC, "b")]))
        assert not is_reflexivity_free(RDFGraph([triple("a", SC, "a")]))
        assert not is_reflexivity_free(RDFGraph([triple("p", SP, "p")]))

    def test_blank_in_sp_triple_not_reflexivity_free(self):
        # (b, sp, X) can be witnessed by the reflexive (b, sp, b) —
        # found by hypothesis; the class must exclude it.
        h = RDFGraph([triple("b", SP, BNode("X"))])
        assert not is_reflexivity_free(h)
        g = RDFGraph([triple("a", "p", "a"), triple("a", SP, "b")])
        assert entails(g, h)         # via rule (11)'s (b, sp, b)
        assert not rho_entails(g, h)  # invisible to the minimal system
