"""Unit tests for the backtracking solver (:mod:`repro.core.homomorphism`)."""

import pytest

from repro.core import (
    BNode,
    RDFGraph,
    Triple,
    URI,
    Variable,
    count_assignments,
    find_assignment,
    find_map,
    find_proper_endomorphism,
    iter_assignments,
    iter_maps,
    triple,
)
from repro.core.homomorphism import find_map_into_subgraph


def g(*tuples):
    return RDFGraph.from_tuples(tuples)


class TestAssignments:
    def test_ground_pattern_membership(self):
        target = g(("a", "p", "b"))
        assert find_assignment([triple("a", "p", "b")], target) == {}
        assert find_assignment([triple("a", "p", "c")], target) is None

    def test_single_variable(self):
        target = g(("a", "p", "b"), ("a", "p", "c"))
        found = list(iter_assignments([Triple(URI("a"), URI("p"), Variable("x"))], target))
        images = {a[Variable("x")] for a in found}
        assert images == {URI("b"), URI("c")}

    def test_variable_in_predicate_position(self):
        target = g(("a", "p", "b"), ("a", "q", "b"))
        found = list(
            iter_assignments([Triple(URI("a"), Variable("p"), URI("b"))], target)
        )
        assert {a[Variable("p")] for a in found} == {URI("p"), URI("q")}

    def test_join_consistency(self):
        target = g(("a", "p", "b"), ("b", "p", "c"), ("b", "p", "a"))
        x, y, z = Variable("x"), Variable("y"), Variable("z")
        pattern = [Triple(x, URI("p"), y), Triple(y, URI("p"), z)]
        found = list(iter_assignments(pattern, target))
        # Chains: a→b→c, a→b→a, b→a→b.
        chains = {(a[x].value, a[y].value, a[z].value) for a in found}
        assert chains == {("a", "b", "c"), ("a", "b", "a"), ("b", "a", "b")}

    def test_repeated_variable_within_triple(self):
        target = g(("a", "p", "a"), ("a", "p", "b"))
        x = Variable("x")
        found = list(iter_assignments([Triple(x, URI("p"), x)], target))
        assert [a[x] for a in found] == [URI("a")]

    def test_frozen_terms_act_as_constants(self):
        X = BNode("X")
        target = g(("a", "p", "b"))
        pattern = [Triple(X, URI("p"), URI("b"))]
        assert find_assignment(pattern, target) is not None
        # Frozen: X is not assignable, and (X, p, b) is not in target.
        assert find_assignment(pattern, target, frozen=[X]) is None

    def test_partial_assignment_respected(self):
        target = g(("a", "p", "b"), ("c", "p", "b"))
        x = Variable("x")
        found = list(
            iter_assignments([Triple(x, URI("p"), URI("b"))], target, partial={x: URI("c")})
        )
        assert len(found) == 1 and found[0][x] == URI("c")

    def test_count_assignments(self):
        target = g(("a", "p", "b"), ("a", "p", "c"), ("a", "p", "d"))
        x = Variable("x")
        assert count_assignments([Triple(URI("a"), URI("p"), x)], target) == 3

    def test_empty_pattern(self):
        assert find_assignment([], g(("a", "p", "b"))) == {}

    def test_deterministic_order(self):
        target = g(("a", "p", "b"), ("a", "p", "c"))
        x = Variable("x")
        runs = [
            [a[x].value for a in iter_assignments([Triple(URI("a"), URI("p"), x)], target)]
            for _ in range(2)
        ]
        assert runs[0] == runs[1]


class TestMaps:
    def test_find_map_exists(self):
        X = BNode("X")
        source = RDFGraph([triple("a", "p", X)])
        target = g(("a", "p", "b"))
        m = find_map(source, target)
        assert m is not None
        assert m.apply_graph(source).issubgraph(target)

    def test_find_map_none(self):
        source = g(("a", "q", "b"))
        target = g(("a", "p", "b"))
        assert find_map(source, target) is None

    def test_iter_maps_all(self):
        X = BNode("X")
        source = RDFGraph([triple("a", "p", X)])
        target = g(("a", "p", "b"), ("a", "p", "c"))
        images = {m(X) for m in iter_maps(source, target)}
        assert images == {URI("b"), URI("c")}

    def test_map_to_blank_target(self):
        X, Y = BNode("X"), BNode("Y")
        source = RDFGraph([triple("a", "p", X)])
        target = RDFGraph([triple("a", "p", Y)])
        m = find_map(source, target)
        assert m is not None and m(X) == Y

    def test_blank_cannot_land_on_literal_in_subject(self):
        from repro.core import Literal

        X = BNode("X")
        # X appears in subject position; the only target triple has a URI
        # subject, so X must map there (never to a literal).
        source = RDFGraph([triple(X, "p", "b")])
        target = RDFGraph([triple("a", "p", "b"), triple("a", "q", Literal("l"))])
        m = find_map(source, target)
        assert m(X) == URI("a")


class TestProperEndomorphisms:
    def test_lean_graph_has_none(self):
        X = BNode("X")
        graph = RDFGraph([triple("a", "p", X), triple(X, "q", "b")])
        assert find_proper_endomorphism(graph) is None

    def test_non_lean_graph(self):
        X = BNode("X")
        graph = RDFGraph([triple("a", "p", "b"), triple("a", "p", X)])
        m = find_proper_endomorphism(graph)
        assert m is not None
        assert m.apply_graph(graph) < graph

    def test_ground_graph_has_none(self):
        assert find_proper_endomorphism(g(("a", "p", "b"), ("c", "p", "d"))) is None

    def test_find_map_into_subgraph(self):
        X = BNode("X")
        graph = RDFGraph([triple("a", "p", "b"), triple("a", "p", X)])
        m = find_map_into_subgraph(graph, triple("a", "p", X))
        assert m is not None and m(X) == URI("b")
        assert find_map_into_subgraph(graph, triple("a", "p", "b")) is None


class TestSolverStress:
    def test_path_into_cycle(self):
        # Directed path of blanks maps into a directed 3-cycle of blanks.
        def path(n):
            return RDFGraph(
                [triple(BNode(f"P{i}"), "e", BNode(f"P{i+1}")) for i in range(n)]
            )

        cycle = RDFGraph(
            [
                triple(BNode("C0"), "e", BNode("C1")),
                triple(BNode("C1"), "e", BNode("C2")),
                triple(BNode("C2"), "e", BNode("C0")),
            ]
        )
        assert find_map(path(7), cycle) is not None

    def test_cycle_into_path_fails(self):
        cycle = RDFGraph(
            [
                triple(BNode("C0"), "e", BNode("C1")),
                triple(BNode("C1"), "e", BNode("C0")),
            ]
        )
        path = RDFGraph([triple(BNode("P0"), "e", BNode("P1"))])
        assert find_map(cycle, path) is None

    def test_all_homomorphisms_count(self):
        # Blank edge into a target with m edges: one map per edge
        # orientation match.
        X, Y = BNode("X"), BNode("Y")
        source = RDFGraph([triple(X, "e", Y)])
        target = g(("a", "e", "b"), ("b", "e", "c"), ("c", "e", "a"))
        assert sum(1 for _ in iter_maps(source, target)) == 3
