"""The ρdf (reflexivity-free) fragment: closure-size and time savings.

Series: full ``RDFS-cl`` vs the minimal system's ``ρ-cl`` on growing
ontologies — the padding the full system adds is Θ(|voc|), which for
schema-light data dominates the closure.
"""

import pytest

from repro.generators import random_schema_with_instances, sc_chain_with_instance
from repro.semantics import rdfs_closure, reflexivity_padding, rho_closure

SPECS = [(4, 3, 8, 12), (8, 6, 16, 24), (12, 9, 24, 36)]


def ontology(spec):
    classes, properties, instances, uses = spec
    return random_schema_with_instances(
        classes, properties, instances, uses, blank_probability=0.2, seed=19
    )


@pytest.mark.parametrize("spec", SPECS, ids=[f"O{i}" for i in range(len(SPECS))])
def test_full_closure(benchmark, spec):
    g = ontology(spec)
    benchmark(rdfs_closure, g)


@pytest.mark.parametrize("spec", SPECS, ids=[f"O{i}" for i in range(len(SPECS))])
def test_rho_closure(benchmark, spec):
    g = ontology(spec)
    benchmark(rho_closure, g)


@pytest.mark.parametrize("n", [8, 16, 32])
def test_rho_closure_chains(benchmark, n):
    benchmark(rho_closure, sc_chain_with_instance(n))


def test_decomposition_invariant():
    for spec in SPECS:
        g = ontology(spec)
        assert rdfs_closure(g) == rho_closure(g).union(reflexivity_padding(g))


def collect_series():
    import time

    rows = []
    for spec in SPECS:
        g = ontology(spec)
        t0 = time.perf_counter()
        full = rdfs_closure(g)
        t_full = (time.perf_counter() - t0) * 1e3
        t0 = time.perf_counter()
        rho = rho_closure(g)
        t_rho = (time.perf_counter() - t0) * 1e3
        rows.append((len(g), len(full), len(rho), t_full, t_rho))
    return rows
