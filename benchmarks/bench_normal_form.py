"""E15/E16 — Theorems 3.19/3.20: computing and verifying normal forms.

Series: ``nf(G) = core(cl(G))`` on ontology workloads (the production
path every query answer takes, via ``nf(D + P)``), the cost split
between closure and core, and the DP verification procedure
``is_normal_form_of``.
"""

import pytest

from repro.generators import random_schema_with_instances, sc_chain_with_instance
from repro.minimize import core, is_normal_form_of, normal_form
from repro.semantics import closure

SPECS = [(3, 2, 4, 6), (5, 4, 8, 12), (8, 6, 12, 18)]


def ontology(spec):
    classes, properties, instances, uses = spec
    return random_schema_with_instances(
        classes, properties, instances, uses, blank_probability=0.3, seed=17
    )


@pytest.mark.parametrize("spec", SPECS, ids=[f"O{i}" for i in range(len(SPECS))])
def test_normal_form(benchmark, spec):
    g = ontology(spec)
    benchmark(normal_form, g)


@pytest.mark.parametrize("spec", SPECS, ids=[f"O{i}" for i in range(len(SPECS))])
def test_core_of_closure_split(benchmark, spec):
    g = ontology(spec)
    closed = closure(g)
    benchmark(core, closed)


@pytest.mark.parametrize("n", [4, 8, 16])
def test_normal_form_chains(benchmark, n):
    benchmark(normal_form, sc_chain_with_instance(n))


@pytest.mark.parametrize("spec", SPECS[:2], ids=["O0", "O1"])
def test_nf_verification(benchmark, spec):
    g = ontology(spec)
    candidate = normal_form(g)
    result = benchmark(is_normal_form_of, candidate, g)
    assert result is True


def collect_series():
    import time

    rows = []
    for spec in SPECS:
        g = ontology(spec)
        t0 = time.perf_counter()
        closed = closure(g)
        t_cl = (time.perf_counter() - t0) * 1e3
        t0 = time.perf_counter()
        nf = core(closed)
        t_core = (time.perf_counter() - t0) * 1e3
        rows.append((len(g), len(closed), len(nf), t_cl, t_core))
    return rows
