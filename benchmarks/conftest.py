"""Shared benchmark configuration."""

import pytest


def pytest_collection_modifyitems(items):
    # Benchmarks are ordered by module so related series group together
    # in the pytest-benchmark report.
    items.sort(key=lambda item: (item.module.__name__, item.name))
