"""Guard overhead A/B: an infinite-budget guard vs no guard at all.

The execution-governance layer (repro.robustness.guard) promises that
its amortized checks keep a *guarded* run with an unlimited budget
within noise of an *unguarded* one — the per-step cost is one ambient
``is not None`` test plus, when a guard is installed, an int add and a
compare.  This benchmark commits that promise as a number the CI perf
gate watches (overhead above 1.1x fails the build).

Two sentinel workloads, one per governed kernel:

* the E4 ``hard/non-3-colorable n=10`` refutation — planner
  backtracking, where every candidate assignment ticks the guard;
* the sp-chain(64) encoded closure — the dictionary-encoded fixpoint,
  where every round charges its derived-fact count.

Timings are *interleaved* best-of-N minima: alternating the A and B
runs inside one loop exposes both variants to the same thermal /
scheduling environment, so the ratio is stable even when the absolute
numbers wobble.
"""

import time

from repro.generators import random_digraph, sp_chain
from repro.reductions import DiGraph, encode_graph
from repro.robustness import Budget, guarded
from repro.semantics import simple_entails
from repro.semantics.closure import rdfs_closure_encoded

REPEATS = 7


def _interleaved_best(fn, repeats=REPEATS):
    """(unguarded_ms, guarded_ms): interleaved best-of-*repeats* minima."""
    unlimited = Budget.unlimited()
    best_plain = best_guarded = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best_plain = min(best_plain, (time.perf_counter() - t0) * 1e3)
        with guarded(unlimited):
            t0 = time.perf_counter()
            fn()
            best_guarded = min(best_guarded, (time.perf_counter() - t0) * 1e3)
    return best_plain, best_guarded


def _e4_hard_workload(n=10):
    """The E4 perf-gate sentinel: exhaustive non-3-colorable refutation."""
    base = random_digraph(n, 2 * n, seed=9)
    instance = DiGraph(edges=set(base.edges) | set(DiGraph.complete(4).edges))
    k3 = encode_graph(DiGraph.complete(3))
    pattern = encode_graph(instance.symmetrized())

    def run():
        assert simple_entails(k3, pattern) is False

    return run


def _closure_workload(n=64):
    """The closure perf-gate sentinel: sp-chain(64), encoded kernel."""
    graph = sp_chain(n)

    def run():
        rdfs_closure_encoded(graph)

    return run


def collect_ab_series():
    """Rows of (workload, unguarded ms, guarded ms, overhead ratio)."""
    rows = []
    for name, workload in [
        ("E4 hard n=10 entail", _e4_hard_workload()),
        ("sp-chain(64) closure", _closure_workload()),
    ]:
        plain_ms, guarded_ms = _interleaved_best(workload)
        overhead = guarded_ms / plain_ms if plain_ms else float("inf")
        rows.append((name, plain_ms, guarded_ms, overhead))
    return rows
