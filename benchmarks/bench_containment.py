"""E24 — Theorems 5.6/5.12: containment complexity, with/without premises.

Series:

* plain ⊑p/⊑m on chain queries of growing length (the NP regime of
  Theorem 5.6 — these instances stay easy, showing typical-case cost);
* the hard instances: containment encoding graph homomorphism
  (Theorem 5.6's reduction), cost growing with the encoded graph;
* premise containment: |Ω_q| and total time as the body grows
  (the Π2P regime of Theorem 5.12).
"""

import pytest

from repro.core import RDFGraph, Variable, triple
from repro.generators import chain_query
from repro.query import (
    contained_entailment,
    contained_standard,
    head_body_query,
    premise_elimination,
)
from repro.reductions import DiGraph, encode_graph, random_3sat

CHAIN_SIZES = [2, 4, 8]
HOM_SIZES = [4, 6, 8]
PREMISE_BODY_SIZES = [2, 3, 4]


@pytest.mark.parametrize("n", CHAIN_SIZES)
def test_standard_containment_chains(benchmark, n):
    q_long = chain_query(n)
    q_short = chain_query(max(1, n // 2))
    # Align heads: use the bodies as heads (select-all queries).
    result = benchmark(contained_standard, q_long, q_long)
    assert result is True


@pytest.mark.parametrize("n", CHAIN_SIZES)
def test_entailment_containment_chains(benchmark, n):
    q = chain_query(n)
    result = benchmark(contained_entailment, q, q)
    assert result is True


def _hom_containment_instance(n, seed=3):
    """Theorem 5.6's reduction: q ⊑p q′ iff H homomorphic to H'."""
    from repro.generators import random_digraph

    h = random_digraph(n, int(1.5 * n), seed=seed)
    h2 = random_digraph(n, 2 * n, seed=seed + 50)
    head = [("a", "b", "c")]

    def body_of(graph):
        return [
            (Variable(f"v{u}"), "e", Variable(f"v{v}")) for u, v in sorted(graph.edges)
        ]

    q = head_body_query(head=head, body=body_of(h2))
    q2 = head_body_query(head=head, body=body_of(h))
    return q, q2


@pytest.mark.parametrize("n", HOM_SIZES)
def test_containment_hom_encoding(benchmark, n):
    q, q2 = _hom_containment_instance(n)
    benchmark(contained_standard, q, q2)


@pytest.mark.parametrize("k", PREMISE_BODY_SIZES)
def test_premise_containment(benchmark, k):
    body = [(f"?X{i}", "q", f"?X{i+1}") for i in range(k)] + [("?X0", "t", "s")]
    premise = RDFGraph([triple("a", "t", "s"), triple("b", "t", "s")])
    q = head_body_query(head=[("?X0", "sel", f"?X{k}")], body=body, premise=premise)
    q_wide = head_body_query(
        head=[("?X0", "sel", f"?X{k}")],
        body=[(f"?X{i}", "q", f"?X{i+1}") for i in range(k)],
    )
    result = benchmark(contained_standard, q, q_wide)
    assert result is True


@pytest.mark.parametrize("k", PREMISE_BODY_SIZES)
def test_premise_elimination_size(benchmark, k):
    body = [(f"?X{i}", "q", f"?X{i+1}") for i in range(k)] + [("?X0", "t", "s")]
    premise = RDFGraph([triple("a", "t", "s"), triple("b", "t", "s")])
    q = head_body_query(head=[("?X0", "sel", f"?X{k}")], body=body, premise=premise)
    members = benchmark(premise_elimination, q)
    assert len(members) >= 1


def collect_series():
    import time

    rows = []
    for n in HOM_SIZES:
        q, q2 = _hom_containment_instance(n)
        t0 = time.perf_counter()
        verdict = contained_standard(q, q2)
        rows.append(("hom-encoding", n, verdict, (time.perf_counter() - t0) * 1e3))
    for k in PREMISE_BODY_SIZES:
        body = [(f"?X{i}", "q", f"?X{i+1}") for i in range(k)] + [("?X0", "t", "s")]
        premise = RDFGraph([triple("a", "t", "s"), triple("b", "t", "s")])
        q = head_body_query(
            head=[("?X0", "sel", f"?X{k}")], body=body, premise=premise
        )
        t0 = time.perf_counter()
        members = premise_elimination(q)
        rows.append(
            ("omega-size", k, len(members), (time.perf_counter() - t0) * 1e3)
        )
    return rows
