"""The pD*-lite OWL extension: closure cost on top of RDFS.

Series: joint RDFS+OWL closure vs plain RDFS closure on data with
inverse/symmetric/transitive property use and sameAs chains — the
extension keeps the polynomial profile (ter Horst [26]); sameAs
substitution is its quadratic-ish hot spot.
"""

import pytest

from repro.core import RDFGraph, Triple, URI
from repro.core.vocabulary import TYPE
from repro.semantics import owl_closure, rdfs_closure
from repro.semantics.owl_horst import INVERSE_OF, SAME_AS, SYMMETRIC, TRANSITIVE

SIZES = [8, 16, 32]


def property_workload(n):
    triples = [
        Triple(URI("link"), TYPE, TRANSITIVE),
        Triple(URI("touch"), TYPE, SYMMETRIC),
        Triple(URI("fwd"), INVERSE_OF, URI("bwd")),
    ]
    for i in range(n):
        triples.append(Triple(URI(f"n{i}"), URI("link"), URI(f"n{i+1}")))
        triples.append(Triple(URI(f"n{i}"), URI("touch"), URI(f"m{i}")))
        triples.append(Triple(URI(f"n{i}"), URI("fwd"), URI(f"k{i}")))
    return RDFGraph(triples)


def same_as_chain(n):
    triples = [
        Triple(URI(f"alias{i}"), SAME_AS, URI(f"alias{i+1}")) for i in range(n)
    ]
    triples += [Triple(URI("alias0"), URI("p"), URI(f"v{j}")) for j in range(4)]
    return RDFGraph(triples)


@pytest.mark.parametrize("n", SIZES)
def test_owl_closure_properties(benchmark, n):
    g = property_workload(n)
    result = benchmark(owl_closure, g)
    assert Triple(URI("n0"), URI("link"), URI(f"n{n}")) in result


@pytest.mark.parametrize("n", SIZES)
def test_rdfs_closure_baseline(benchmark, n):
    g = property_workload(n)
    benchmark(rdfs_closure, g)


@pytest.mark.parametrize("n", [4, 8, 12])
def test_same_as_chain_substitution(benchmark, n):
    g = same_as_chain(n)
    result = benchmark(owl_closure, g)
    # Every alias carries every fact.
    assert Triple(URI(f"alias{n}"), URI("p"), URI("v0")) in result


def collect_series():
    import time

    rows = []
    for n in SIZES:
        g = property_workload(n)
        t0 = time.perf_counter()
        owl = owl_closure(g)
        t_owl = (time.perf_counter() - t0) * 1e3
        t0 = time.perf_counter()
        rdfs = rdfs_closure(g)
        t_rdfs = (time.perf_counter() - t0) * 1e3
        rows.append((len(g), len(rdfs), len(owl), t_rdfs, t_owl))
    return rows
