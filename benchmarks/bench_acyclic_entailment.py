"""E5 — Section 2.4: blank-acyclic entailment is polynomial.

Series: deciding ``G1 ⊨ G2`` for blank-acyclic ``G2`` (chains and
stars) via (a) the Yannakakis pipeline (RDF → D_G/Q_G → join tree →
semijoins) and (b) the general backtracking solver.  Both are
polynomial here — the point of the experiment is that the dedicated
pipeline's cost stays flat as the pattern grows, demonstrating the
acyclic special case the paper highlights.
"""

import pytest

from repro.core import BNode, RDFGraph, Triple, URI
from repro.generators import blank_chain, random_simple_rdf_graph
from repro.relational import simple_entails_acyclic
from repro.semantics import simple_entails

PATTERN_SIZES = [4, 8, 16, 32]
DATA_SIZE = 300


def data_graph():
    return random_simple_rdf_graph(DATA_SIZE, 40, num_predicates=1, seed=21)


def blank_star_pattern(rays):
    centre = BNode("C")
    return RDFGraph(
        Triple(centre, URI("p0"), BNode(f"L{i}")) for i in range(rays)
    )


@pytest.mark.parametrize("n", PATTERN_SIZES)
def test_chain_yannakakis(benchmark, n):
    g1 = data_graph()
    g2 = blank_chain(n, predicate="p0")
    benchmark(simple_entails_acyclic, g1, g2)


@pytest.mark.parametrize("n", PATTERN_SIZES)
def test_chain_backtracking(benchmark, n):
    g1 = data_graph()
    g2 = blank_chain(n, predicate="p0")
    benchmark(simple_entails, g1, g2)


@pytest.mark.parametrize("n", PATTERN_SIZES)
def test_star_yannakakis(benchmark, n):
    g1 = data_graph()
    g2 = blank_star_pattern(n)
    benchmark(simple_entails_acyclic, g1, g2)


def test_agreement():
    g1 = data_graph()
    for n in PATTERN_SIZES:
        chain = blank_chain(n, predicate="p0")
        assert simple_entails_acyclic(g1, chain) == simple_entails(g1, chain)


def _best_of(fn, reps=9):
    """Minimum wall time over *reps* runs, in ms (robust to OS jitter).

    The two columns differ by a few percent at most (both sides share
    the planner's preparation), so single-run timings flip the
    comparison under load; the minimum of several runs is stable.
    """
    import time

    fn()  # warm-up: indexes, caches
    best = float("inf")
    result = None
    for _ in range(reps):
        t0 = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - t0)
    return best * 1e3, result


def collect_series():
    rows = []
    g1 = data_graph()
    for n in PATTERN_SIZES:
        g2 = blank_chain(n, predicate="p0")
        t_yann, r1 = _best_of(lambda: simple_entails_acyclic(g1, g2))
        t_back, r2 = _best_of(lambda: simple_entails(g1, g2))
        assert r1 == r2
        rows.append((n, r1, t_yann, t_back))
    return rows
