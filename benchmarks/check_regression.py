#!/usr/bin/env python3
"""CI perf-regression gate over the committed benchmark baselines.

Usage:  python benchmarks/check_regression.py BASELINE.json FRESH.json

Compares a fresh ``BENCH_entailment.json`` (written by
``run_report.py --quick`` during the CI run) against the committed
baseline (copied aside before the quick bench overwrites it).  Two
sentinel workloads guard the two kernels this repo optimizes:

* E4 ``hard/non-3-colorable n=10`` — the matching planner's hardest
  committed row (exhaustive refutation with backtracking);
* the largest sp-chain row of the closure-kernel A/B — the
  dictionary-encoded fixpoint.

The gate fails (exit 1) only on a >3x slowdown: CI runners are noisy,
so the threshold is loose by design — it catches algorithmic
regressions (a dropped index, an accidental quadratic loop), not jitter.
Missing keys in either file are tolerated and reported as skips, so the
gate keeps working across payload-schema changes.

A third check reads the fresh run's ``guard_overhead`` section (the
execution-guard A/B from bench_guard_overhead.py): an infinite-budget
guarded run more than 1.1x slower than its interleaved unguarded twin
fails the gate.  This one compares within the *fresh* file — the A and
B sides share one runner and one moment, so the tight threshold is
safe where a cross-run 1.1x would be noise.
"""

import json
import sys

#: A fresh measurement above ``3x * baseline`` fails the gate.
THRESHOLD = 3.0

#: A guarded-unlimited run above ``1.1x * unguarded`` fails the gate.
GUARD_OVERHEAD_THRESHOLD = 1.1


def _e4_hard_ms(payload):
    """The current E4 hard/non-3-colorable n=10 timing, or None."""
    try:
        rows = payload["current"]["E4"]
    except (KeyError, TypeError):
        return None
    for row in rows:
        if row.get("family") == "hard/non-3-colorable" and row.get("n") == 10:
            return row.get("ms")
    return None


def _closure_growth_ms(payload):
    """The largest sp-chain encoded-kernel timing, or None."""
    try:
        rows = payload["closure_kernel"]["growth"]
    except (KeyError, TypeError):
        return None
    chains = [r for r in rows if r.get("family") == "sp-chain"]
    if not chains:
        return None
    largest = max(chains, key=lambda r: r.get("size", 0))
    return largest.get("encoded_ms")


CHECKS = [
    ("E4 hard/non-3-colorable n=10", _e4_hard_ms),
    ("closure-kernel sp-chain (largest)", _closure_growth_ms),
]


def check_guard_overhead(fresh) -> bool:
    """True when the fresh run's guard-overhead rows stay under 1.1x."""
    try:
        rows = fresh["guard_overhead"]["rows"]
    except (KeyError, TypeError):
        print("perf gate: guard overhead: no comparable rows, skipped")
        return True
    ok = True
    for row in rows:
        name = row.get("workload", "?")
        overhead = row.get("overhead")
        if overhead is None:
            print(f"perf gate: guard overhead [{name}]: no ratio, skipped")
            continue
        verdict = "FAIL" if overhead > GUARD_OVERHEAD_THRESHOLD else "ok"
        print(
            f"perf gate: guard overhead [{name}]: "
            f"{row.get('unguarded_ms')} ms unguarded vs "
            f"{row.get('guarded_ms')} ms guarded "
            f"({overhead:.3f}x) {verdict}"
        )
        ok = ok and overhead <= GUARD_OVERHEAD_THRESHOLD
    return ok


def main(argv=None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    if len(argv) != 2:
        print(__doc__)
        return 2
    try:
        baseline = json.loads(open(argv[0]).read())
    except (OSError, ValueError) as e:
        print(f"perf gate: cannot read baseline {argv[0]} ({e}); skipping")
        return 0
    try:
        fresh = json.loads(open(argv[1]).read())
    except (OSError, ValueError) as e:
        print(f"perf gate: cannot read fresh run {argv[1]} ({e})")
        return 1

    failed = False
    for name, extract in CHECKS:
        base_ms, fresh_ms = extract(baseline), extract(fresh)
        if base_ms is None or fresh_ms is None or base_ms <= 0:
            print(f"perf gate: {name}: no comparable rows, skipped")
            continue
        ratio = fresh_ms / base_ms
        verdict = "FAIL" if ratio > THRESHOLD else "ok"
        print(
            f"perf gate: {name}: baseline {base_ms:.3f} ms, "
            f"fresh {fresh_ms:.3f} ms ({ratio:.2f}x) {verdict}"
        )
        failed = failed or ratio > THRESHOLD

    failed = failed or not check_guard_overhead(fresh)

    if failed:
        print(f"perf gate: regression above {THRESHOLD}x threshold")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
