#!/usr/bin/env python3
"""CI perf-regression gate over the committed benchmark baselines.

Usage:  python benchmarks/check_regression.py BASELINE.json FRESH.json
            [INGEST_BASELINE.json INGEST_FRESH.json
             [QUERY_BASELINE.json QUERY_FRESH.json
              [DURABILITY_BASELINE.json DURABILITY_FRESH.json]]]

Compares a fresh ``BENCH_entailment.json`` (written by
``run_report.py --quick`` during the CI run) against the committed
baseline (copied aside before the quick bench overwrites it).  Two
sentinel workloads guard the two kernels this repo optimizes:

* E4 ``hard/non-3-colorable n=10`` — the matching planner's hardest
  committed row (exhaustive refutation with backtracking);
* the largest sp-chain row of the closure-kernel A/B/C, once for the
  ``arrays`` (sorted-run merge) kernel and once for the ``encoded``
  (dict-of-sets) baseline.

With the optional second pair, the same largest-common-size / >3x rule
also gates the scale path from ``BENCH_ingest.json`` (committed full
run vs the CI ``bench_ingest.py --smoke`` rerun): streaming-ingest
wall-clock (a 3x slowdown at a fixed size is a 3x throughput drop) and
the partitioned closure kernel.  Both ladders always contain the
10⁵-triple row precisely so this comparison has a common size.

The gate fails (exit 1) on a >3x slowdown: CI runners are noisy, so
the threshold is loose by design — it catches algorithmic regressions
(a dropped index, an accidental quadratic loop), not jitter.  An
expected section *missing* from either file also fails the gate: a
silently dropped bench row would otherwise disable its check forever.

A third check reads the fresh run's ``guard_overhead`` section (the
execution-guard A/B from bench_guard_overhead.py): an infinite-budget
guarded run more than 1.1x slower than its interleaved unguarded twin
fails the gate.  This one compares within the *fresh* file — the A and
B sides share one runner and one moment, so the tight threshold is
safe where a cross-run 1.1x would be noise.

The fresh ``BENCH_ingest.json`` carries the analogous ``obs_overhead``
section (bench_ingest.py): the telemetry-off ingest and partitioned
close more than 1.1x slower than their interleaved plain twins fail
the gate — the "near-free while off" promise of repro.obs, measured.

With the optional third pair, ``BENCH_query.json`` (committed full run
vs the CI ``bench_query_cache.py --smoke`` rerun) gates the query-cache
serving path the same way: the *cached* timings of the plan-hit,
containment-hit and zipf-stream rows at the largest common size (a 3x
slowdown on a cached hit means the fast path stopped being fast), plus
a within-fresh check that ``store.query`` with *no* cache attached
stays within 1.1x of a direct ``answers()`` call — the "free when
disabled" promise of the serving layer.

With the optional fourth pair, ``BENCH_durability.json`` (committed
full run vs the CI ``bench_durability.py --smoke`` rerun) gates the
durable backend: per-commit WAL latency at the largest common batch
size, and WAL-replay recovery time at the largest common log length.
Both ladders contain the 64-row-batch and 256-batch rows by
construction, so the comparison always has a common size.
"""

import json
import sys

#: A fresh measurement above ``3x * baseline`` fails the gate.
THRESHOLD = 3.0

#: A guarded-unlimited run above ``1.1x * unguarded`` fails the gate.
GUARD_OVERHEAD_THRESHOLD = 1.1

#: A telemetry-off run above ``1.1x * plain`` fails the gate.
OBS_OVERHEAD_THRESHOLD = 1.1

#: A cache-disabled ``store.query`` above ``1.1x * answers()`` fails.
QUERY_DISABLED_THRESHOLD = 1.1


def _e4_hard_series(payload):
    """E4 hard/non-3-colorable timings keyed by n, or {}."""
    try:
        rows = payload["current"]["E4"]
    except (KeyError, TypeError):
        return {}
    return {
        row["n"]: row["ms"]
        for row in rows
        if row.get("family") == "hard/non-3-colorable"
        and row.get("n") is not None and row.get("ms") is not None
    }


def _closure_growth_series(payload, key):
    """sp-chain timings of one kernel column keyed by |G|, or {}.

    Rows where the column was not measured are dropped (``boxed_ms``
    is None on the extended sizes), so the gate only ever compares
    sizes both files actually timed with that kernel.
    """
    try:
        rows = payload["closure_kernel"]["growth"]
    except (KeyError, TypeError):
        return {}
    return {
        row["size"]: row[key]
        for row in rows
        if row.get("family") == "sp-chain"
        and row.get("size") is not None and row.get(key) is not None
    }


def _closure_growth_arrays(payload):
    return _closure_growth_series(payload, "arrays_ms")


def _closure_growth_encoded(payload):
    return _closure_growth_series(payload, "encoded_ms")


def _ingest_serial_series(payload):
    """Serial streaming-load timings keyed by triple count, or {}."""
    try:
        rows = payload["ingest"]["rows"]
    except (KeyError, TypeError):
        return {}
    return {
        row["size"]: row["serial_ms"]
        for row in rows
        if row.get("size") is not None and row.get("serial_ms") is not None
    }


def _partitioned_closure_series(payload):
    """Partitioned-closure timings keyed by triple count, or {}."""
    try:
        rows = payload["partitioned_closure"]["rows"]
    except (KeyError, TypeError):
        return {}
    return {
        row["size"]: row["partitioned_ms"]
        for row in rows
        if row.get("size") is not None
        and row.get("partitioned_ms") is not None
    }


#: Each check extracts a {workload-size: ms} series from a payload; the
#: gate compares baseline vs fresh at the **largest size present in
#: both**, so re-tuning the bench's size ladder never produces an
#: apples-to-oranges ratio.
CHECKS = [
    ("E4 hard/non-3-colorable", _e4_hard_series),
    ("closure-kernel arrays sp-chain", _closure_growth_arrays),
    ("closure-kernel encoded sp-chain", _closure_growth_encoded),
]

#: Checks over the optional BENCH_ingest.json pair.
INGEST_CHECKS = [
    ("streaming ingest serial", _ingest_serial_series),
    ("partitioned closure", _partitioned_closure_series),
]


def _query_cached_series(payload, workload):
    """Cached-serving timings of one query workload keyed by size."""
    try:
        rows = payload["query_cache"]["rows"]
    except (KeyError, TypeError):
        return {}
    return {
        row["size"]: row["cached_ms"]
        for row in rows
        if row.get("workload") == workload
        and row.get("size") is not None and row.get("cached_ms") is not None
    }


def _query_plan_hit_series(payload):
    return _query_cached_series(payload, "plan-hit")


def _query_containment_hit_series(payload):
    return _query_cached_series(payload, "containment-hit")


def _query_zipf_series(payload):
    return _query_cached_series(payload, "zipf-stream")


#: Checks over the optional BENCH_query.json pair — cached-hit rows
#: only: the cold columns re-measure paths the other gates already
#: watch, but a cached-hit slowdown is *this* subsystem regressing.
QUERY_CHECKS = [
    ("query cache plan-hit", _query_plan_hit_series),
    ("query cache containment-hit", _query_containment_hit_series),
    ("query cache zipf-stream", _query_zipf_series),
]


def _commit_latency_series(payload):
    """Per-commit WAL latency keyed by batch size, or {}."""
    try:
        rows = payload["commit_latency"]["rows"]
    except (KeyError, TypeError):
        return {}
    return {
        row["batch_rows"]: row["ms_per_commit"]
        for row in rows
        if row.get("batch_rows") is not None
        and row.get("ms_per_commit") is not None
    }


def _recovery_series(payload):
    """WAL-replay open time keyed by committed-batch count, or {}."""
    try:
        rows = payload["recovery"]["rows"]
    except (KeyError, TypeError):
        return {}
    return {
        row["batches"]: row["recovery_ms"]
        for row in rows
        if row.get("batches") is not None
        and row.get("recovery_ms") is not None
    }


#: Checks over the optional BENCH_durability.json pair.
DURABILITY_CHECKS = [
    ("durable commit latency", _commit_latency_series),
    ("wal recovery", _recovery_series),
]


def check_guard_overhead(fresh) -> bool:
    """True when the fresh run's guard-overhead rows stay under 1.1x."""
    try:
        rows = fresh["guard_overhead"]["rows"]
    except (KeyError, TypeError):
        print("perf gate: guard overhead: section MISSING from fresh run")
        return False
    if not rows:
        print("perf gate: guard overhead: section empty in fresh run")
        return False
    ok = True
    for row in rows:
        name = row.get("workload", "?")
        overhead = row.get("overhead")
        if overhead is None:
            print(f"perf gate: guard overhead [{name}]: no ratio, skipped")
            continue
        verdict = "FAIL" if overhead > GUARD_OVERHEAD_THRESHOLD else "ok"
        print(
            f"perf gate: guard overhead [{name}]: "
            f"{row.get('unguarded_ms')} ms unguarded vs "
            f"{row.get('guarded_ms')} ms guarded "
            f"({overhead:.3f}x) {verdict}"
        )
        ok = ok and overhead <= GUARD_OVERHEAD_THRESHOLD
    return ok


def check_obs_overhead(ingest_fresh) -> bool:
    """True when the fresh run's obs-off A/B rows stay under 1.1x."""
    try:
        rows = ingest_fresh["obs_overhead"]["rows"]
    except (KeyError, TypeError):
        print("perf gate: obs overhead: section MISSING from fresh run")
        return False
    if not rows:
        print("perf gate: obs overhead: section empty in fresh run")
        return False
    ok = True
    for row in rows:
        name = row.get("workload", "?")
        overhead = row.get("overhead")
        if overhead is None:
            print(f"perf gate: obs overhead [{name}]: no ratio, skipped")
            continue
        verdict = "FAIL" if overhead > OBS_OVERHEAD_THRESHOLD else "ok"
        print(
            f"perf gate: obs overhead [{name}]: "
            f"{row.get('plain_ms')} ms plain vs "
            f"{row.get('disabled_obs_ms')} ms telemetry-off "
            f"({overhead:.3f}x) {verdict}"
        )
        ok = ok and overhead <= OBS_OVERHEAD_THRESHOLD
    return ok


def check_query_disabled_overhead(query_fresh) -> bool:
    """True when cache-less ``store.query`` stays within 1.1x."""
    try:
        rows = query_fresh["disabled_overhead"]["rows"]
    except (KeyError, TypeError):
        print("perf gate: query disabled overhead: section MISSING from fresh run")
        return False
    if not rows:
        print("perf gate: query disabled overhead: section empty in fresh run")
        return False
    ok = True
    for row in rows:
        name = row.get("workload", "?")
        overhead = row.get("overhead")
        if overhead is None:
            print(f"perf gate: query disabled overhead [{name}]: no ratio, skipped")
            continue
        verdict = "FAIL" if overhead > QUERY_DISABLED_THRESHOLD else "ok"
        print(
            f"perf gate: query disabled overhead [{name}]: "
            f"{round(row.get('plain_ms', 0), 3)} ms answers() vs "
            f"{round(row.get('disabled_ms', 0), 3)} ms store.query "
            f"({overhead:.3f}x) {verdict}"
        )
        ok = ok and overhead <= QUERY_DISABLED_THRESHOLD
    return ok


def run_checks(checks, baseline, fresh) -> bool:
    """Compare each series at the largest common size; True when any fail."""
    failed = False
    for name, extract in checks:
        base_series, fresh_series = extract(baseline), extract(fresh)
        common = sorted(set(base_series) & set(fresh_series))
        if not common:
            # A bench section this gate is supposed to watch has
            # disappeared from one of the payloads: fail loudly — a
            # skip here would silently disable the check forever.
            side = "baseline" if not base_series else "fresh run"
            print(f"perf gate: {name}: expected rows MISSING from {side}")
            failed = True
            continue
        size = common[-1]
        base_ms, fresh_ms = base_series[size], fresh_series[size]
        if base_ms <= 0:
            print(f"perf gate: {name} n={size}: bad baseline {base_ms}")
            failed = True
            continue
        ratio = fresh_ms / base_ms
        verdict = "FAIL" if ratio > THRESHOLD else "ok"
        print(
            f"perf gate: {name} n={size}: baseline {base_ms:.3f} ms, "
            f"fresh {fresh_ms:.3f} ms ({ratio:.2f}x) {verdict}"
        )
        failed = failed or ratio > THRESHOLD
    return failed


def main(argv=None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    if len(argv) not in (2, 4, 6, 8):
        print(__doc__)
        return 2
    try:
        baseline = json.loads(open(argv[0]).read())
    except (OSError, ValueError) as e:
        print(f"perf gate: cannot read baseline {argv[0]} ({e}); skipping")
        return 0
    try:
        fresh = json.loads(open(argv[1]).read())
    except (OSError, ValueError) as e:
        print(f"perf gate: cannot read fresh run {argv[1]} ({e})")
        return 1

    failed = run_checks(CHECKS, baseline, fresh)
    failed = failed or not check_guard_overhead(fresh)

    if len(argv) >= 4:
        try:
            ingest_baseline = json.loads(open(argv[2]).read())
        except (OSError, ValueError) as e:
            print(
                f"perf gate: cannot read ingest baseline {argv[2]} ({e})"
            )
            ingest_baseline = None
        try:
            ingest_fresh = json.loads(open(argv[3]).read())
        except (OSError, ValueError) as e:
            print(f"perf gate: cannot read ingest fresh run {argv[3]} ({e})")
            ingest_fresh = None
        if ingest_baseline is None or ingest_fresh is None:
            # The caller asked for the ingest gate; a missing file is a
            # broken pipeline, not a reason to wave the check through.
            failed = True
        else:
            failed = run_checks(
                INGEST_CHECKS, ingest_baseline, ingest_fresh
            ) or failed
            failed = failed or not check_obs_overhead(ingest_fresh)

    if len(argv) >= 6:
        try:
            query_baseline = json.loads(open(argv[4]).read())
        except (OSError, ValueError) as e:
            print(f"perf gate: cannot read query baseline {argv[4]} ({e})")
            query_baseline = None
        try:
            query_fresh = json.loads(open(argv[5]).read())
        except (OSError, ValueError) as e:
            print(f"perf gate: cannot read query fresh run {argv[5]} ({e})")
            query_fresh = None
        if query_baseline is None or query_fresh is None:
            # Same policy as the ingest pair: the caller asked for this
            # gate, so a missing file is a broken pipeline.
            failed = True
        else:
            failed = run_checks(
                QUERY_CHECKS, query_baseline, query_fresh
            ) or failed
            failed = (not check_query_disabled_overhead(query_fresh)) or failed

    if len(argv) == 8:
        try:
            durability_baseline = json.loads(open(argv[6]).read())
        except (OSError, ValueError) as e:
            print(
                f"perf gate: cannot read durability baseline {argv[6]} ({e})"
            )
            durability_baseline = None
        try:
            durability_fresh = json.loads(open(argv[7]).read())
        except (OSError, ValueError) as e:
            print(
                f"perf gate: cannot read durability fresh run {argv[7]} ({e})"
            )
            durability_fresh = None
        if durability_baseline is None or durability_fresh is None:
            # Same policy again: the caller asked for the durability
            # gate, so a missing file is a broken pipeline.
            failed = True
        else:
            failed = run_checks(
                DURABILITY_CHECKS, durability_baseline, durability_fresh
            ) or failed

    if failed:
        print(f"perf gate: regression above {THRESHOLD}x threshold")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
