#!/usr/bin/env python3
"""CI perf-regression gate over the committed benchmark baselines.

Usage:  python benchmarks/check_regression.py BASELINE.json FRESH.json

Compares a fresh ``BENCH_entailment.json`` (written by
``run_report.py --quick`` during the CI run) against the committed
baseline (copied aside before the quick bench overwrites it).  Two
sentinel workloads guard the two kernels this repo optimizes:

* E4 ``hard/non-3-colorable n=10`` — the matching planner's hardest
  committed row (exhaustive refutation with backtracking);
* the largest sp-chain row of the closure-kernel A/B — the
  dictionary-encoded fixpoint.

The gate fails (exit 1) only on a >3x slowdown: CI runners are noisy,
so the threshold is loose by design — it catches algorithmic
regressions (a dropped index, an accidental quadratic loop), not jitter.
Missing keys in either file are tolerated and reported as skips, so the
gate keeps working across payload-schema changes.
"""

import json
import sys

#: A fresh measurement above ``3x * baseline`` fails the gate.
THRESHOLD = 3.0


def _e4_hard_ms(payload):
    """The current E4 hard/non-3-colorable n=10 timing, or None."""
    try:
        rows = payload["current"]["E4"]
    except (KeyError, TypeError):
        return None
    for row in rows:
        if row.get("family") == "hard/non-3-colorable" and row.get("n") == 10:
            return row.get("ms")
    return None


def _closure_growth_ms(payload):
    """The largest sp-chain encoded-kernel timing, or None."""
    try:
        rows = payload["closure_kernel"]["growth"]
    except (KeyError, TypeError):
        return None
    chains = [r for r in rows if r.get("family") == "sp-chain"]
    if not chains:
        return None
    largest = max(chains, key=lambda r: r.get("size", 0))
    return largest.get("encoded_ms")


CHECKS = [
    ("E4 hard/non-3-colorable n=10", _e4_hard_ms),
    ("closure-kernel sp-chain (largest)", _closure_growth_ms),
]


def main(argv=None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    if len(argv) != 2:
        print(__doc__)
        return 2
    try:
        baseline = json.loads(open(argv[0]).read())
    except (OSError, ValueError) as e:
        print(f"perf gate: cannot read baseline {argv[0]} ({e}); skipping")
        return 0
    try:
        fresh = json.loads(open(argv[1]).read())
    except (OSError, ValueError) as e:
        print(f"perf gate: cannot read fresh run {argv[1]} ({e})")
        return 1

    failed = False
    for name, extract in CHECKS:
        base_ms, fresh_ms = extract(baseline), extract(fresh)
        if base_ms is None or fresh_ms is None or base_ms <= 0:
            print(f"perf gate: {name}: no comparable rows, skipped")
            continue
        ratio = fresh_ms / base_ms
        verdict = "FAIL" if ratio > THRESHOLD else "ok"
        print(
            f"perf gate: {name}: baseline {base_ms:.3f} ms, "
            f"fresh {fresh_ms:.3f} ms ({ratio:.2f}x) {verdict}"
        )
        failed = failed or ratio > THRESHOLD

    if failed:
        print(f"perf gate: regression above {THRESHOLD}x threshold")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
