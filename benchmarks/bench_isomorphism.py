"""Isomorphism and canonical labelling of RDF graphs.

Uniqueness statements throughout the paper are "up to isomorphism";
this series measures the cost of deciding it, on the two regimes that
matter:

* *structured blanks* — each blank node distinguishable by refinement
  (fast path);
* *symmetric blanks* — interchangeable blanks forcing the permutation
  fallback in canonical labelling.
"""

import pytest

from repro.core import BNode, RDFGraph, Triple, URI, canonical_form, isomorphic
from repro.generators import random_simple_rdf_graph

SIZES = [10, 20, 40]
SYMMETRIC_SIZES = [3, 5, 7]


def renamed(graph):
    blanks = sorted(graph.bnodes(), key=lambda n: n.value)
    return graph.rename_bnodes({n: BNode(f"zz{i}") for i, n in enumerate(blanks)})


@pytest.mark.parametrize("n", SIZES)
def test_isomorphic_structured(benchmark, n):
    g = random_simple_rdf_graph(n, n // 2, blank_probability=0.5, seed=51)
    h = renamed(g)
    result = benchmark(isomorphic, g, h)
    assert result is True


@pytest.mark.parametrize("n", SIZES)
def test_isomorphic_negative(benchmark, n):
    g = random_simple_rdf_graph(n, n // 2, blank_probability=0.5, seed=51)
    h = random_simple_rdf_graph(n, n // 2, blank_probability=0.5, seed=52)
    benchmark(isomorphic, g, h)


@pytest.mark.parametrize("n", SIZES)
def test_canonical_form_structured(benchmark, n):
    g = random_simple_rdf_graph(n, n // 2, blank_probability=0.5, seed=51)
    benchmark(canonical_form, g)


@pytest.mark.parametrize("n", SYMMETRIC_SIZES)
def test_canonical_form_symmetric_blanks(benchmark, n):
    # n interchangeable blanks: refinement cannot separate them.
    g = RDFGraph(
        [Triple(URI("hub"), URI("p"), BNode(f"X{i}")) for i in range(n)]
    )
    result = benchmark(canonical_form, g)
    assert len(result) == n


def collect_series():
    import time

    rows = []
    for n in SIZES:
        g = random_simple_rdf_graph(n, n // 2, blank_probability=0.5, seed=51)
        h = renamed(g)
        t0 = time.perf_counter()
        isomorphic(g, h)
        rows.append(("iso/structured", n, (time.perf_counter() - t0) * 1e3))
    for n in SYMMETRIC_SIZES:
        g = RDFGraph(
            [Triple(URI("hub"), URI("p"), BNode(f"X{i}")) for i in range(n)]
        )
        t0 = time.perf_counter()
        canonical_form(g)
        rows.append(("canon/symmetric", n, (time.perf_counter() - t0) * 1e3))
    return rows
