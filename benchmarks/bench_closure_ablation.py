"""Ablation — three independent closure implementations race.

DESIGN.md §5 calls out the closure's design choices; this bench
compares:

* the staged algorithm (`rdfs_closure`) — bulk transitive closures per
  rule group, what production paths use;
* the literal rule engine (`rdfs_closure_by_rules`) — Definition 2.7
  verbatim, naive fixpoint over rule instantiations;
* the Datalog rendition (`closure_via_datalog`) — semi-naive evaluation
  of the compiled program.

All three provably compute the same set (tested); the interesting
output is the cost ordering and how it scales.
"""

import pytest

from repro.datalog import closure_via_datalog
from repro.generators import random_schema_with_instances, sc_chain_with_instance
from repro.semantics import rdfs_closure, rdfs_closure_by_rules

SPECS = [(4, 3, 6, 10), (8, 6, 12, 20)]
CHAIN_SIZES = [8, 16]


def ontology(spec):
    classes, properties, instances, uses = spec
    return random_schema_with_instances(
        classes, properties, instances, uses, blank_probability=0.2, seed=13
    )


@pytest.mark.parametrize("spec", SPECS, ids=["G0", "G1"])
def test_staged_algorithm(benchmark, spec):
    g = ontology(spec)
    benchmark(rdfs_closure, g)


@pytest.mark.parametrize("spec", SPECS, ids=["G0", "G1"])
def test_rule_engine(benchmark, spec):
    g = ontology(spec)
    benchmark(rdfs_closure_by_rules, g)


@pytest.mark.parametrize("spec", SPECS, ids=["G0", "G1"])
def test_datalog_semi_naive(benchmark, spec):
    g = ontology(spec)
    benchmark(closure_via_datalog, g)


@pytest.mark.parametrize("n", CHAIN_SIZES)
def test_staged_on_chains(benchmark, n):
    benchmark(rdfs_closure, sc_chain_with_instance(n))


@pytest.mark.parametrize("n", CHAIN_SIZES)
def test_datalog_on_chains(benchmark, n):
    benchmark(closure_via_datalog, sc_chain_with_instance(n))


def test_all_three_agree():
    for spec in SPECS:
        g = ontology(spec)
        staged = rdfs_closure(g)
        assert staged == rdfs_closure_by_rules(g)
        assert staged == closure_via_datalog(g)


def collect_series():
    import time

    rows = []
    for spec in SPECS:
        g = ontology(spec)
        timings = []
        for fn in (rdfs_closure, rdfs_closure_by_rules, closure_via_datalog):
            t0 = time.perf_counter()
            fn(g)
            timings.append((time.perf_counter() - t0) * 1e3)
        rows.append((len(g), *timings))
    return rows
