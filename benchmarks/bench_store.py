"""Store ablation — delta-aware write maintenance vs recomputation.

The store materializes ``cl(dataset)`` and maintains it through writes
in both directions: insertions propagate through the semi-naive delta
loop (``extend_fixpoint_into``), deletions run delete–rederive
(``retract_fixpoint_into``).  The alternatives — what the seed store
did — are recomputing the closure from scratch after every write and
rebuilding the dataset ``RDFGraph`` on every read.

Three series:

* insert stream — incremental insert maintenance vs per-insert
  recomputation (the original A2 ablation);
* delete stream — single-triple DRed deletions from a materialized
  store vs the seed's recompute-on-delete baseline;
* read loop — ``dataset()``/``describe()`` against the live cache
  (O(1) amortized after a write) vs per-call snapshot rebuilding.
"""

import statistics
import time

import pytest

from repro.core import RDFGraph, Triple, URI
from repro.core.vocabulary import TYPE
from repro.datalog.engine import evaluate_program
from repro.datalog.rdfs_program import TRIPLE_RELATION, rdfs_datalog_program
from repro.generators import random_schema_with_instances
from repro.store import TripleStore

BASE_SPECS = [(4, 3, 8, 12), (8, 6, 16, 24)]
INSERTS = 8

#: Deletion workload: big enough that the materialized closure holds
#: well over 500 facts, as the acceptance bar for DRed requires.
DELETE_SPEC = (12, 8, 40, 80)
DELETES = 12

READS = 200


def base_ontology(spec):
    classes, properties, instances, uses = spec
    return random_schema_with_instances(
        classes, properties, instances, uses, blank_probability=0.0, seed=23
    )


def insert_stream(k):
    return [
        Triple(URI(f"newcomer{i}"), TYPE, URI("class0")) for i in range(k)
    ]


@pytest.mark.parametrize("spec", BASE_SPECS, ids=["S0", "S1"])
def test_incremental_insert_stream(benchmark, spec):
    def run():
        store = TripleStore()
        store.add_all(base_ontology(spec))
        store.closure()  # materialize once
        for t in insert_stream(INSERTS):
            store.add(t)  # each triggers incremental maintenance
        return store

    store = benchmark(run)
    assert store.stats["incremental_insert"] == INSERTS


@pytest.mark.parametrize("spec", BASE_SPECS, ids=["S0", "S1"])
def test_recompute_insert_stream(benchmark, spec):
    from repro.semantics import rdfs_closure

    def run():
        graph = base_ontology(spec)
        triples = set(graph.triples)
        for t in insert_stream(INSERTS):
            triples.add(t)
            rdfs_closure(RDFGraph(triples))  # full recompute per insert
        return triples

    benchmark(run)


def _delete_store():
    store = TripleStore()
    store.add_all(base_ontology(DELETE_SPEC))
    store.closure()  # materialize once
    return store


def delete_victims():
    """A representative victim sample, strided across the sorted base.

    A sorted prefix would be all ``sc`` schema edges (the worst-case
    derivation cones); the stride mixes schema and instance triples the
    way a real deletion stream would.
    """
    base = sorted(base_ontology(DELETE_SPEC), key=str)
    stride = max(1, len(base) // DELETES)
    return base[::stride][:DELETES]


def test_dred_delete_stream(benchmark):
    victims = delete_victims()

    store = _delete_store()

    def run():
        for v in victims:
            store.remove(v)  # DRed maintenance per deletion
        for v in victims:
            store.add(v)  # restore for the next round
        return store

    benchmark(run)
    assert store.stats["incremental_delete"] >= DELETES
    assert store.stats["recomputed"] == 1  # only the initial materialization


def test_recompute_delete_baseline(benchmark):
    """The seed write path: deletion invalidates, next read recomputes."""
    program = rdfs_datalog_program()
    rows = {(t.s, t.p, t.o) for t in base_ontology(DELETE_SPEC)}
    victims = delete_victims()

    def run():
        for v in victims:
            kept = rows - {(v.s, v.p, v.o)}
            evaluate_program(
                program, [(TRIPLE_RELATION, r) for r in kept]
            )

    benchmark(run)


@pytest.mark.parametrize("spec", BASE_SPECS, ids=["S0", "S1"])
def test_entailment_probe_after_stream(benchmark, spec):
    store = TripleStore()
    store.add_all(base_ontology(spec))
    for t in insert_stream(INSERTS):
        store.add(t)
    probe = Triple(URI("newcomer0"), TYPE, URI("class0"))
    result = benchmark(store.entails, probe)
    assert result is True


def test_read_loop_after_write(benchmark):
    """dataset() from the live cache: O(1) amortized after one write."""
    store = _delete_store()
    store.add(Triple(URI("probe"), TYPE, URI("class0")))

    def run():
        for _ in range(READS):
            store.dataset()
        return store.dataset()

    benchmark(run)


def collect_series():
    from repro.semantics import rdfs_closure

    rows = []
    for spec in BASE_SPECS:
        base = base_ontology(spec)
        # Incremental.
        store = TripleStore()
        store.add_all(base)
        store.closure()
        t0 = time.perf_counter()
        for t in insert_stream(INSERTS):
            store.add(t)
        t_incremental = (time.perf_counter() - t0) * 1e3
        # Recompute.
        triples = set(base.triples)
        t0 = time.perf_counter()
        for t in insert_stream(INSERTS):
            triples.add(t)
            rdfs_closure(RDFGraph(triples))
        t_recompute = (time.perf_counter() - t0) * 1e3
        rows.append((len(base), INSERTS, t_incremental, t_recompute))
    return rows


def collect_delete_series():
    """Per-deletion DRed vs recompute-on-delete on a materialized store.

    Returns one row per victim triple:
    ``(closure_size, dred_ms, recompute_ms)``.
    """
    program = rdfs_datalog_program()
    victims = delete_victims()

    store = _delete_store()
    closure_size = len(store.closure())

    rows = []
    all_rows = {(t.s, t.p, t.o) for t in base_ontology(DELETE_SPEC)}
    for v in victims:
        t0 = time.perf_counter()
        store.remove(v)
        t_dred = (time.perf_counter() - t0) * 1e3
        store.add(v)

        kept = all_rows - {(v.s, v.p, v.o)}
        t0 = time.perf_counter()
        evaluate_program(program, [(TRIPLE_RELATION, r) for r in kept])
        t_recompute = (time.perf_counter() - t0) * 1e3

        rows.append((closure_size, t_dred, t_recompute))
    return rows


def collect_read_series():
    """Read-heavy loop after a write: live cache vs per-call rebuild.

    Returns ``(reads, first_ms, cached_avg_us, rebuild_avg_us)``: the
    first ``dataset()`` call after a write pays the snapshot build once;
    the remaining calls return the cached graph.  The rebuild column is
    the seed behaviour — constructing the union ``RDFGraph`` per call.
    """
    store = _delete_store()
    store.add(Triple(URI("probe"), TYPE, URI("class0")))

    t0 = time.perf_counter()
    store.dataset()
    first_ms = (time.perf_counter() - t0) * 1e3

    t0 = time.perf_counter()
    for _ in range(READS):
        store.dataset()
    cached_avg_us = (time.perf_counter() - t0) * 1e6 / READS

    union = set()
    for name in store.graph_names():
        union |= set(store.graph(name).triples)
    t0 = time.perf_counter()
    for _ in range(READS):
        RDFGraph(union)
    rebuild_avg_us = (time.perf_counter() - t0) * 1e6 / READS

    return READS, first_ms, cached_avg_us, rebuild_avg_us


def store_payload():
    """The BENCH_store.json body: seed recompute-on-delete vs DRed."""
    delete_rows = collect_delete_series()
    closure_size = delete_rows[0][0] if delete_rows else 0
    dred = [round(r[1], 3) for r in delete_rows]
    recompute = [round(r[2], 3) for r in delete_rows]
    med_dred = statistics.median(dred) if dred else 0.0
    med_rec = statistics.median(recompute) if recompute else 0.0
    reads, first_ms, cached_us, rebuild_us = collect_read_series()
    insert_rows = collect_series()
    return {
        "description": (
            "Store write-path benchmarks: single-triple deletions from a "
            "materialized store under DRed maintenance vs the seed's "
            "recompute-on-delete baseline, plus the read loop against "
            "the live dataset cache. "
            "Regenerate with: python benchmarks/run_report.py"
        ),
        "units": "ms unless suffixed _us",
        "delete": {
            "closure_size": closure_size,
            "deletions": len(delete_rows),
            "seed_recompute_ms": recompute,
            "dred_ms": dred,
            "median_seed_ms": round(med_rec, 3),
            "median_dred_ms": round(med_dred, 3),
            "speedup": round(med_rec / med_dred, 2) if med_dred else None,
        },
        "read_loop": {
            "reads": reads,
            "first_call_ms": round(first_ms, 3),
            "cached_avg_us": round(cached_us, 3),
            "seed_rebuild_avg_us": round(rebuild_us, 3),
        },
        "insert": [
            {
                "base": size,
                "inserts": inserts,
                "incremental_ms": round(t_inc, 3),
                "recompute_ms": round(t_rec, 3),
            }
            for size, inserts, t_inc, t_rec in insert_rows
        ],
    }
