"""Store ablation — incremental closure maintenance vs recomputation.

The store materializes ``cl(dataset)`` and maintains it through
insertions by semi-naive delta propagation (``extend_fixpoint``); the
alternative is recomputing the closure from scratch after every write.
The series measures a stream of single-triple inserts into a growing
ontology under both strategies.
"""

import pytest

from repro.core import Triple, URI
from repro.core.vocabulary import SC, TYPE
from repro.generators import random_schema_with_instances
from repro.store import TripleStore

BASE_SPECS = [(4, 3, 8, 12), (8, 6, 16, 24)]
INSERTS = 8


def base_ontology(spec):
    classes, properties, instances, uses = spec
    return random_schema_with_instances(
        classes, properties, instances, uses, blank_probability=0.0, seed=23
    )


def insert_stream(k):
    return [
        Triple(URI(f"newcomer{i}"), TYPE, URI("class0")) for i in range(k)
    ]


@pytest.mark.parametrize("spec", BASE_SPECS, ids=["S0", "S1"])
def test_incremental_insert_stream(benchmark, spec):
    def run():
        store = TripleStore()
        store.add_all(base_ontology(spec))
        store.closure()  # materialize once
        for t in insert_stream(INSERTS):
            store.add(t)  # each triggers incremental maintenance
        return store

    store = benchmark(run)
    assert store.stats["incremental"] == INSERTS


@pytest.mark.parametrize("spec", BASE_SPECS, ids=["S0", "S1"])
def test_recompute_insert_stream(benchmark, spec):
    from repro.semantics import rdfs_closure

    def run():
        graph = base_ontology(spec)
        triples = set(graph.triples)
        for t in insert_stream(INSERTS):
            triples.add(t)
            from repro.core import RDFGraph

            rdfs_closure(RDFGraph(triples))  # full recompute per insert
        return triples

    benchmark(run)


@pytest.mark.parametrize("spec", BASE_SPECS, ids=["S0", "S1"])
def test_entailment_probe_after_stream(benchmark, spec):
    store = TripleStore()
    store.add_all(base_ontology(spec))
    for t in insert_stream(INSERTS):
        store.add(t)
    probe = Triple(URI("newcomer0"), TYPE, URI("class0"))
    result = benchmark(store.entails, probe)
    assert result is True


def collect_series():
    import time

    from repro.core import RDFGraph
    from repro.semantics import rdfs_closure

    rows = []
    for spec in BASE_SPECS:
        base = base_ontology(spec)
        # Incremental.
        store = TripleStore()
        store.add_all(base)
        store.closure()
        t0 = time.perf_counter()
        for t in insert_stream(INSERTS):
            store.add(t)
        t_incremental = (time.perf_counter() - t0) * 1e3
        # Recompute.
        triples = set(base.triples)
        t0 = time.perf_counter()
        for t in insert_stream(INSERTS):
            triples.add(t)
            rdfs_closure(RDFGraph(triples))
        t_recompute = (time.perf_counter() - t0) * 1e3
        rows.append((len(base), INSERTS, t_incremental, t_recompute))
    return rows
