"""E27 — Theorems 6.2/6.3: redundancy elimination, union vs merge.

Series: leanness checking of query answers as the database grows, via

* the general coNP procedure on ``ans∪`` (Theorem 6.2's regime), and
* the polynomial single-map procedure on ``ans+`` (Theorem 6.3).

The merge procedure's per-answer searches are query-sized, so its cost
curve should stay close to linear in |D| while the general check
degrades on blank-heavy answers.
"""

import pytest

from repro.core import BNode, RDFGraph, Triple, URI
from repro.minimize import is_lean
from repro.query import (
    answer_merge,
    answer_union,
    head_body_query,
    merge_answer_is_lean,
    pre_answers,
    union_answer_is_lean,
)

SIZES = [4, 8, 12]


def blanky_database(n):
    """Section 6.2's phenomenon, scaled: a lean database whose
    projection query yields a maximally redundant answer.

    ``n`` blank records hang off a hub, chained by ``succ`` edges that
    keep the database lean (a directed blank path is a core); the
    owns-only projection discards the chain, leaving ``n`` mutually
    subsuming single answers.
    """
    triples = []
    for i in range(n):
        record = BNode(f"R{i}")
        triples.append(Triple(URI("hub"), URI("owns"), record))
        if i + 1 < n:
            triples.append(Triple(record, URI("succ"), BNode(f"R{i+1}")))
    return RDFGraph(triples)


def feature_query():
    return head_body_query(
        head=[("hub", "owns", "?R")],
        body=[("hub", "owns", "?R")],
    )


@pytest.mark.parametrize("n", SIZES)
def test_union_leanness_general_conp(benchmark, n):
    d = blanky_database(n)
    q = feature_query()
    result = benchmark(union_answer_is_lean, q, d)
    assert result is False


@pytest.mark.parametrize("n", SIZES)
def test_merge_leanness_polynomial(benchmark, n):
    d = blanky_database(n)
    q = feature_query()
    result = benchmark(merge_answer_is_lean, q, d)
    assert result is False


@pytest.mark.parametrize("n", SIZES)
def test_merge_leanness_via_general_check(benchmark, n):
    # Ablation: the general coNP check applied to the merged answer —
    # what Theorem 6.3 saves us from.
    d = blanky_database(n)
    q = feature_query()
    result = benchmark(lambda: is_lean(answer_merge(q, d)))
    assert result is False


CYCLE_SIZES = [5, 7, 9]


def odd_cycle_database(n):
    """enc(C_n), symmetric, odd n: the union answer *is* lean, and
    confirming that is the coNP-hard part — every candidate retraction
    of the odd cycle must be refuted."""
    from repro.reductions import DiGraph, encode_graph

    return encode_graph(DiGraph.cycle(n))


def edge_query():
    return head_body_query(head=[("?X", "e", "?Y")], body=[("?X", "e", "?Y")])


@pytest.mark.parametrize("n", CYCLE_SIZES)
def test_union_leanness_hard_lean_case(benchmark, n):
    # Measure the *decision* step only (nf/answer computation shared
    # with the merge variant is done outside the timer).
    d = odd_cycle_database(n)
    q = edge_query()
    union = answer_union(q, d)
    result = benchmark(is_lean, union)
    assert result is True  # odd cycles are cores


@pytest.mark.parametrize("n", CYCLE_SIZES)
def test_merge_leanness_same_instance(benchmark, n):
    # Merge semantics splits the cycle into disjoint blank edges, which
    # immediately subsume one another: detected in polynomial time by
    # Theorem 6.3's single-map procedure.
    from repro.query import merge_is_lean_given_answers

    d = odd_cycle_database(n)
    q = edge_query()
    singles = pre_answers(q, d)
    result = benchmark(merge_is_lean_given_answers, singles)
    assert result is False


def test_procedures_agree():
    q = feature_query()
    for n in SIZES:
        d = blanky_database(n)
        assert merge_answer_is_lean(q, d) == is_lean(answer_merge(q, d))


def collect_series():
    import time

    rows = []
    q = feature_query()
    for n in SIZES:
        d = blanky_database(n)
        t0 = time.perf_counter()
        union_answer_is_lean(q, d)
        t_union = (time.perf_counter() - t0) * 1e3
        t0 = time.perf_counter()
        merge_answer_is_lean(q, d)
        t_merge = (time.perf_counter() - t0) * 1e3
        rows.append(("projection", n, len(pre_answers(q, d)), t_union, t_merge))
    from repro.query import merge_is_lean_given_answers

    q = edge_query()
    for n in CYCLE_SIZES:
        d = odd_cycle_database(n)
        union = answer_union(q, d)
        singles = pre_answers(q, d)
        t0 = time.perf_counter()
        is_lean(union)
        t_union = (time.perf_counter() - t0) * 1e3
        t0 = time.perf_counter()
        merge_is_lean_given_answers(singles)
        t_merge = (time.perf_counter() - t0) * 1e3
        rows.append(("odd-cycle", n, len(singles), t_union, t_merge))
    return rows
