"""E11 — Theorem 3.12: leanness is coNP-complete; cores are DP-hard.

Series:

* leanness checks on the *hard* family — encoded odd cycles, which are
  cores, so the procedure must refute every candidate retraction;
* leanness on the easy family — blank stars, refuted immediately;
* full core computation on redundancy-heavy graphs (the iterated
  retraction of Theorem 3.10's proof).
"""

import pytest

from repro.core import RDFGraph
from repro.generators import blank_star, redundant_blank_fan
from repro.minimize import core, is_lean
from repro.reductions import DiGraph, encode_graph

CYCLE_SIZES = [5, 7, 9]
FAN_SIZES = [4, 8, 16]


@pytest.mark.parametrize("n", CYCLE_SIZES)
def test_leanness_hard_odd_cycles(benchmark, n):
    graph = encode_graph(DiGraph.cycle(n))
    result = benchmark(is_lean, graph)
    assert result is True  # odd cycles are graph cores


@pytest.mark.parametrize("n", FAN_SIZES)
def test_leanness_easy_blank_stars(benchmark, n):
    graph = blank_star(n)
    result = benchmark(is_lean, graph)
    assert result is False


@pytest.mark.parametrize("n", FAN_SIZES)
def test_core_computation_fans(benchmark, n):
    graph = redundant_blank_fan(n)
    result = benchmark(core, graph)
    assert len(result) == 1


@pytest.mark.parametrize("n", [4, 6, 8])
def test_core_computation_even_cycles(benchmark, n):
    graph = encode_graph(DiGraph.cycle(n))
    result = benchmark(core, graph)
    assert len(result) == 2  # collapses to K2


def collect_series():
    import time

    rows = []
    for n in CYCLE_SIZES:
        graph = encode_graph(DiGraph.cycle(n))
        t0 = time.perf_counter()
        is_lean(graph)
        rows.append(("lean?/odd-cycle", n, (time.perf_counter() - t0) * 1e3))
    for n in FAN_SIZES:
        graph = redundant_blank_fan(n)
        t0 = time.perf_counter()
        core(graph)
        rows.append(("core/fan", n, (time.perf_counter() - t0) * 1e3))
    return rows
