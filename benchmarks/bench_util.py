"""Shared helpers for the benchmark scripts."""

from __future__ import annotations

import json
import os
from pathlib import Path


def atomic_write_json(path, payload) -> None:
    """Write *payload* as JSON via a same-directory temp file + rename.

    Benchmark JSON is consumed by the regression gate and archived as a
    CI artifact; a benchmark process dying mid-write (OOM, timeout,
    ctrl-C) must leave either the previous file or the new one, never a
    half-written JSON that fails parsing downstream.  ``os.replace`` is
    atomic on POSIX and Windows when source and target share a
    directory, which is why the temp file sits next to the target.
    """
    path = Path(path)
    tmp = path.with_name(path.name + ".tmp")
    with open(tmp, "w") as f:
        json.dump(payload, f, indent=2, sort_keys=True)
        f.write("\n")
        f.flush()
        os.fsync(f.fileno())
    os.replace(tmp, path)
