#!/usr/bin/env python3
"""Ingest + partitioned-closure growth bench → ``BENCH_ingest.json``.

The scale-path measurements behind ROADMAP item 3:

* **ingest** — streaming bulk load (``repro.ingest.load_ntriples``) of
  the deterministic synthetic ontology at growing sizes, serial and
  parallel, reported as wall-clock and rows/s.  Near-linear ``load_ms``
  growth across the size ladder is the claim under test.
* **partitioned_closure** — ``rdfs_closure_partitioned`` vs the
  single-shard ``rdfs_closure_arrays`` at sizes where both run
  (identical graph-in/graph-out endpoints, so the ratio is honest),
  then the partitioned kernel alone — straight from the loader's
  encoded rows, no boxed graph — at sizes beyond the single-shard
  ladder.
* **parse** — the one-shot ``parse_ntriples`` micro-benchmark guarding
  the streaming-tokenizer rewrite in ``rdfio/ntriples.py``.

``--smoke`` runs the CI-sized variant (10⁵ triples, 2 workers,
2 shards); the full run tops out at the 10⁶-triple load-and-close.
Both emit the same JSON shape, sharing the 10⁵ row so
``check_regression.py`` always has a common size to gate on.
"""

import argparse
import json
import os
import sys
import tempfile
import time

sys.path.insert(
    0,
    os.path.join(
        os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src"
    ),
)
sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

from bench_util import atomic_write_json

from repro.generators import synthetic_ontology_lines, write_synthetic_ontology
from repro.ingest import load_ntriples
from repro.rdfio.ntriples import parse_ntriples
from repro.semantics.closure import (
    rdfs_closure_arrays,
    rdfs_closure_partitioned,
    rdfs_closure_partitioned_rows,
)

#: Size ladders.  The smoke ladder stops at 10⁵ (CI-sized); the full
#: ladder extends to the million-triple target.  Both contain 10⁵, so
#: the regression gate always finds a common row.
SMOKE_SIZES = [10_000, 100_000]
FULL_SIZES = [100_000, 300_000, 1_000_000]

#: Sizes at which the single-shard arrays kernel is also timed (the
#: boxed-graph round trip is part of both measurements).  Beyond these
#: the partitioned kernel runs alone, rows-level.
SMOKE_ARRAYS_LIMIT = 100_000
FULL_ARRAYS_LIMIT = 300_000

PARSE_LINES = 20_000

#: The obs-disabled overhead A/B (one size is enough: the check is a
#: ratio, not a growth curve).
OBS_OVERHEAD_SIZE = 10_000
OBS_OVERHEAD_REPEATS = 5
OBS_OVERHEAD_THRESHOLD = 1.1


def _best_of(fn, repeats):
    best = float("inf")
    result = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        result = fn()
        best = min(best, (time.perf_counter() - t0) * 1e3)
    return best, result


def bench_ingest(path, sizes, workers, repeats):
    rows = []
    for size in sizes:
        write_synthetic_ontology(path, size)
        serial_ms, result = _best_of(
            lambda: load_ntriples(path, workers=1), repeats
        )
        row = {
            "size": size,
            "triples": result.triples,
            "serial_ms": round(serial_ms, 1),
            "rows_per_s": round(size / (serial_ms / 1e3)),
            "workers": workers,
            "parallel_ms": None,
        }
        if workers > 1:
            parallel_ms, _ = _best_of(
                lambda: load_ntriples(path, workers=workers), repeats
            )
            row["parallel_ms"] = round(parallel_ms, 1)
        rows.append(row)
        print(
            f"ingest    n={size:>9,}: serial {row['serial_ms']:>9.1f} ms "
            f"({row['rows_per_s']:,} rows/s)"
            + (
                f", {workers} workers {row['parallel_ms']:>9.1f} ms"
                if row["parallel_ms"] is not None
                else ""
            )
        )
    return rows


def bench_partitioned_closure(path, sizes, arrays_limit, shards, repeats):
    rows = []
    for size in sizes:
        write_synthetic_ontology(path, size)
        loaded = load_ntriples(path, workers=1)
        if size <= arrays_limit:
            # Graph-level A/B: identical endpoints (boxed graph in,
            # boxed graph out), so the ratio compares kernels only.
            graph = loaded.graph()
            arrays_ms, closed = _best_of(
                lambda: rdfs_closure_arrays(graph), repeats
            )
            part_ms, _ = _best_of(
                lambda: rdfs_closure_partitioned(graph, shards=shards),
                repeats,
            )
            closure_rows = len(closed)
            ratio = round(part_ms / arrays_ms, 3)
        else:
            # Beyond the single-shard ladder: rows-level, no boxed
            # graph anywhere (that is the point of the scale path).
            arrays_ms = None
            ratio = None
            part_ms, acc = _best_of(
                lambda: rdfs_closure_partitioned_rows(
                    loaded.runs.rows(), shards=shards
                ),
                repeats,
            )
            closure_rows = len(acc)
        rows.append({
            "size": size,
            "closure_rows": closure_rows,
            "shards": shards,
            "partitioned_ms": round(part_ms, 1),
            "arrays_ms": round(arrays_ms, 1) if arrays_ms is not None else None,
            "ratio": ratio,
        })
        print(
            f"closure   n={size:>9,}: partitioned({shards}) "
            f"{part_ms:>9.1f} ms, arrays "
            + (f"{arrays_ms:>9.1f} ms ({ratio}x)" if arrays_ms else "— (skipped)")
            + f", |cl| = {closure_rows:,}"
        )
    return rows


def bench_obs_overhead(path, shards):
    """Interleaved A/B: plain vs obs-disabled ingest and close.

    Side A is the untouched call (instrumentation never enabled, no
    reporter anywhere); side B is the same call after an
    ``obs.enable()``/``obs.disable()`` cycle, carrying a
    constructed-but-disabled :class:`ProgressReporter` — exactly the
    state a CLI run without ``--profile``/``--progress`` is in after
    PR 8's telemetry wiring.  The sides interleave within one process
    and one moment, so a tight 1.1x threshold is safe where a cross-run
    ratio would be noise (same design as bench_guard_overhead.py).
    """
    from repro import obs
    from repro.obs.progress import ProgressReporter

    write_synthetic_ontology(path, OBS_OVERHEAD_SIZE)
    base_rows = load_ntriples(path, workers=1).runs.rows()
    reporter = ProgressReporter(enabled=False)
    obs.enable()
    obs.disable()

    def interleaved(plain_fn, disabled_fn):
        plain = disabled = float("inf")
        for _ in range(OBS_OVERHEAD_REPEATS):
            t0 = time.perf_counter()
            plain_fn()
            plain = min(plain, (time.perf_counter() - t0) * 1e3)
            t0 = time.perf_counter()
            disabled_fn()
            disabled = min(disabled, (time.perf_counter() - t0) * 1e3)
        return round(plain, 1), round(disabled, 1)

    rows = []
    for workload, plain_fn, disabled_fn in (
        (
            f"ingest serial n={OBS_OVERHEAD_SIZE}",
            lambda: load_ntriples(path, workers=1),
            lambda: load_ntriples(path, workers=1, progress=reporter),
        ),
        (
            f"partitioned close n={OBS_OVERHEAD_SIZE}",
            lambda: rdfs_closure_partitioned_rows(base_rows, shards=shards),
            lambda: rdfs_closure_partitioned_rows(
                base_rows, shards=shards, progress=reporter
            ),
        ),
    ):
        plain_ms, disabled_ms = interleaved(plain_fn, disabled_fn)
        overhead = round(disabled_ms / plain_ms, 3) if plain_ms else None
        rows.append(
            {
                "workload": workload,
                "plain_ms": plain_ms,
                "disabled_obs_ms": disabled_ms,
                "overhead": overhead,
            }
        )
        print(
            f"obs off   {workload}: plain {plain_ms:>9.1f} ms, "
            f"telemetry-off {disabled_ms:>9.1f} ms ({overhead}x)"
        )
    return {"rows": rows, "threshold": OBS_OVERHEAD_THRESHOLD}


def bench_parse(repeats):
    text = "\n".join(synthetic_ontology_lines(PARSE_LINES)) + "\n"
    parse_ms, graph = _best_of(lambda: parse_ntriples(text), repeats)
    print(
        f"parse     n={PARSE_LINES:>9,}: one-shot {parse_ms:>9.1f} ms "
        f"({len(graph):,} triples)"
    )
    return {"lines": PARSE_LINES, "parse_ms": round(parse_ms, 1)}


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument(
        "--smoke",
        action="store_true",
        help="CI-sized run: 1e5 triples, 2 workers, 2 shards",
    )
    ap.add_argument("--out", default="BENCH_ingest.json")
    args = ap.parse_args(argv)

    if args.smoke:
        sizes, arrays_limit = SMOKE_SIZES, SMOKE_ARRAYS_LIMIT
        workers, shards, repeats = 2, 2, 1
    else:
        sizes, arrays_limit = FULL_SIZES, FULL_ARRAYS_LIMIT
        workers, shards, repeats = 2, 4, 2

    with tempfile.TemporaryDirectory(prefix="repro-bench-") as tmp:
        path = os.path.join(tmp, "onto.nt")
        payload = {
            "meta": {
                "mode": "smoke" if args.smoke else "full",
                "workers": workers,
                "shards": shards,
                "repeats": repeats,
                "python": sys.version.split()[0],
            },
            "ingest": {
                "rows": bench_ingest(path, sizes, workers, repeats)
            },
            "partitioned_closure": {
                "rows": bench_partitioned_closure(
                    path, sizes, arrays_limit, shards, repeats
                )
            },
            "parse": bench_parse(max(repeats, 2)),
            "obs_overhead": bench_obs_overhead(path, shards),
        }
    atomic_write_json(args.out, payload)
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
