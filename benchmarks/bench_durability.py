#!/usr/bin/env python3
"""Durable-backend benchmark → ``BENCH_durability.json``.

Two questions a durability layer must answer with numbers:

* **commit latency vs batch size** — every durable commit is one WAL
  append run plus one fsync, so the per-commit cost should be dominated
  by the fsync at small batches and amortize away as batches grow.  For
  each batch size the same adds are also replayed into a pure
  :class:`MemoryBackend` store, giving the durability overhead ratio
  (how much the WAL costs *on this machine's disk*, not in the
  abstract).

* **recovery time vs log length** — opening a store whose WAL holds K
  committed batches must replay all K; the curve should be linear in
  the log, and a checkpoint must reset it (the post-checkpoint open
  reads segments, not the log).  Each ladder row reports the replay
  open, the WAL byte count it consumed, and the open time after a
  checkpoint of the same data.

``--smoke`` runs the CI-sized ladder.  Both ladders contain the
64-row-batch and 256-batch rows so ``check_regression.py`` always
finds a common size.
"""

import argparse
import shutil
import sys
import tempfile
import time
import os

sys.path.insert(
    0,
    os.path.join(
        os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src"
    ),
)
sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

from bench_util import atomic_write_json

from repro.core import Triple, URI
from repro.store import TripleStore

#: Rows per commit.  Both ladders contain 64 (the regression gate's
#: common size); the full ladder walks the amortization curve.
SMOKE_BATCH_SIZES = [1, 64]
FULL_BATCH_SIZES = [1, 16, 64, 512, 2048]

#: Committed WAL batches to replay at open.  Both ladders contain 256.
SMOKE_LOG_LENGTHS = [256]
FULL_LOG_LENGTHS = [256, 1024, 4096]

#: Total rows written per commit-latency measurement (split into
#: ``total // batch`` commits, at least MIN_COMMITS of them).
SMOKE_TOTAL_ROWS = 1_024
FULL_TOTAL_ROWS = 8_192
MIN_COMMITS = 4


def _triples(n, tag):
    return [
        Triple(URI(f"u:{tag}-s{i // 7}"), URI(f"u:p{i % 7}"), URI(f"u:o{i}"))
        for i in range(n)
    ]


def bench_commit_latency(batch, total_rows, tmp_parent):
    """One durable store, ``total//batch`` single-batch commits."""
    commits = max(MIN_COMMITS, total_rows // batch)
    batches = [
        _triples(batch, f"b{batch}x{j}") for j in range(commits)
    ]

    store_dir = tempfile.mkdtemp(dir=tmp_parent)
    store = TripleStore.open(os.path.join(store_dir, "store"))
    t0 = time.perf_counter()
    for rows in batches:
        store.add_all(rows)
    durable_ms = (time.perf_counter() - t0) * 1e3
    fsyncs = int(store.metrics.counter("wal.fsyncs"))
    store.close()
    shutil.rmtree(store_dir, ignore_errors=True)

    memory = TripleStore()
    t0 = time.perf_counter()
    for rows in batches:
        memory.add_all(rows)
    memory_ms = (time.perf_counter() - t0) * 1e3

    return {
        "batch_rows": batch,
        "commits": commits,
        "fsyncs": fsyncs,
        "durable_ms": durable_ms,
        "memory_ms": memory_ms,
        "ms_per_commit": durable_ms / commits,
        "rows_per_s": (commits * batch) / (durable_ms / 1e3),
        "overhead": durable_ms / memory_ms if memory_ms else None,
    }


def bench_recovery(batches, tmp_parent, repeats):
    """Open time of a WAL holding *batches* committed batches."""
    store_dir = os.path.join(tempfile.mkdtemp(dir=tmp_parent), "store")
    store = TripleStore.open(store_dir)
    for j in range(batches):
        store.add_all(_triples(4, f"r{j}"))
    wal_bytes = store.backend.info()["wal_bytes"]
    rows = len(store.dataset())
    store.close()

    replay_ms = float("inf")
    recovered = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        reopened = TripleStore.open(store_dir)
        replay_ms = min(replay_ms, (time.perf_counter() - t0) * 1e3)
        recovered = int(reopened.metrics.counter("wal.recovered_batches"))
        reopened.close()
    assert recovered == batches, (recovered, batches)

    # Checkpoint the same data: the open must now read segments, and
    # its cost stops tracking the (now reset) log length.
    compact = TripleStore.open(store_dir)
    compact.checkpoint()
    compact.close()
    checkpointed_ms = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        reopened = TripleStore.open(store_dir)
        checkpointed_ms = min(
            checkpointed_ms, (time.perf_counter() - t0) * 1e3
        )
        reopened.close()
    shutil.rmtree(os.path.dirname(store_dir), ignore_errors=True)

    return {
        "batches": batches,
        "rows": rows,
        "wal_bytes": wal_bytes,
        "recovery_ms": replay_ms,
        "checkpointed_open_ms": checkpointed_ms,
        "batches_per_s": batches / (replay_ms / 1e3),
    }


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument(
        "--smoke", action="store_true", help="CI-sized run"
    )
    ap.add_argument("--out", default="BENCH_durability.json")
    args = ap.parse_args(argv)

    batch_sizes = SMOKE_BATCH_SIZES if args.smoke else FULL_BATCH_SIZES
    log_lengths = SMOKE_LOG_LENGTHS if args.smoke else FULL_LOG_LENGTHS
    total_rows = SMOKE_TOTAL_ROWS if args.smoke else FULL_TOTAL_ROWS
    repeats = 2 if args.smoke else 3

    tmp_parent = tempfile.mkdtemp(prefix="repro-bench-durability-")
    try:
        commit_rows = [
            bench_commit_latency(b, total_rows, tmp_parent)
            for b in batch_sizes
        ]
        recovery_rows = [
            bench_recovery(k, tmp_parent, repeats) for k in log_lengths
        ]
    finally:
        shutil.rmtree(tmp_parent, ignore_errors=True)

    payload = {
        "meta": {
            "mode": "smoke" if args.smoke else "full",
            "total_rows": total_rows,
            "repeats": repeats,
            "python": sys.version.split()[0],
        },
        "commit_latency": {"rows": commit_rows},
        "recovery": {"rows": recovery_rows},
    }
    atomic_write_json(args.out, payload)

    for row in commit_rows:
        print(
            f"commit batch={row['batch_rows']:<5d} "
            f"{row['commits']:>5d} commits  "
            f"{row['ms_per_commit']:8.3f} ms/commit  "
            f"{row['rows_per_s']:>10.0f} rows/s  "
            f"({row['overhead']:.1f}x over memory)"
        )
    for row in recovery_rows:
        print(
            f"recover batches={row['batches']:<6d} "
            f"wal {row['wal_bytes']:>8d} B  "
            f"replay {row['recovery_ms']:8.2f} ms  "
            f"checkpointed open {row['checkpointed_open_ms']:6.2f} ms"
        )
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
