"""E13 — Theorem 3.16: minimal representations for the restricted class.

Series: greedy redundancy elimination on redundancy-saturated
hierarchies (transitively closed sc/sp chains with lifted instance
data), versus the transitive-reduction primitive on the raw edge
relations — the two pillars of the theorem's uniqueness argument.
"""

import pytest

from repro.core import RDFGraph, Triple, URI
from repro.core.vocabulary import SC, TYPE
from repro.minimize import minimal_representation, transitive_reduction
from repro.semantics import rdfs_closure

SIZES = [4, 6, 8]


def saturated_hierarchy(n):
    """The closure of an sc-chain with one instance: maximally redundant."""
    base = RDFGraph(
        [Triple(URI(f"c{i}"), SC, URI(f"c{i+1}")) for i in range(n)]
        + [Triple(URI("item"), TYPE, URI("c0"))]
    )
    return rdfs_closure(base)


@pytest.mark.parametrize("n", SIZES)
def test_minimal_representation(benchmark, n):
    graph = saturated_hierarchy(n)
    result = benchmark(minimal_representation, graph)
    # The unique minimum: the chain plus one type triple.
    assert len(result) == n + 1


@pytest.mark.parametrize("n", [16, 32, 64])
def test_transitive_reduction_primitive(benchmark, n):
    edges = {(i, j) for i in range(n) for j in range(i + 1, n)}
    result = benchmark(transitive_reduction, edges)
    assert len(result) == n - 1


def collect_series():
    import time

    rows = []
    for n in SIZES:
        graph = saturated_hierarchy(n)
        t0 = time.perf_counter()
        result = minimal_representation(graph)
        rows.append((len(graph), len(result), (time.perf_counter() - t0) * 1e3))
    return rows
