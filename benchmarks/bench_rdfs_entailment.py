"""E6 — Theorem 2.10: RDFS entailment via closure + map.

Series: full entailment checks over generated ontologies (Fig. 1-shaped
schemas with instance data) of growing size, plus the cost split
between the closure computation and the final map search, and the cost
of producing a verifiable proof object (the theorem's poly-size
witness).
"""

import pytest

from repro.core import RDFGraph, Triple, URI
from repro.core.vocabulary import TYPE
from repro.generators import random_schema_with_instances
from repro.semantics import closure, construct_proof, entails, rdfs_closure_by_rules

SIZES = [(4, 3, 6, 10), (8, 6, 12, 20), (12, 9, 24, 40)]


def ontology(spec, seed=13):
    classes, properties, instances, uses = spec
    return random_schema_with_instances(
        classes, properties, instances, uses, blank_probability=0.2, seed=seed
    )


def conclusion(graph):
    """Ask whether some instance has the root class's type."""
    root = URI("class0")
    candidates = [t.s for t in graph.match(p=TYPE)]
    subject = sorted(candidates, key=str)[0]
    return RDFGraph([Triple(subject, TYPE, root)])


@pytest.mark.parametrize("spec", SIZES, ids=[f"G{i}" for i in range(len(SIZES))])
def test_rdfs_entailment(benchmark, spec):
    g = ontology(spec)
    h = conclusion(g)
    benchmark(entails, g, h)


@pytest.mark.parametrize("spec", SIZES, ids=[f"G{i}" for i in range(len(SIZES))])
def test_closure_fast(benchmark, spec):
    g = ontology(spec)
    benchmark(closure, g)


@pytest.mark.parametrize("spec", SIZES[:2], ids=["G0", "G1"])
def test_closure_rule_engine(benchmark, spec):
    # The literal Definition 2.7 engine — the ablation baseline for the
    # staged algorithm (DESIGN.md §5).
    g = ontology(spec)
    benchmark(rdfs_closure_by_rules, g)


@pytest.mark.parametrize("spec", SIZES[:2], ids=["G0", "G1"])
def test_proof_construction(benchmark, spec):
    g = ontology(spec)
    h = conclusion(g)
    if not entails(g, h):
        pytest.skip("instance does not entail the probe")
    proof = benchmark(construct_proof, g, h)
    assert proof is None or proof.verify()


def collect_series():
    import time

    rows = []
    for spec in SIZES:
        g = ontology(spec)
        h = conclusion(g)
        t0 = time.perf_counter()
        verdict = entails(g, h)
        t_ent = (time.perf_counter() - t0) * 1e3
        t0 = time.perf_counter()
        cl = closure(g)
        t_cl = (time.perf_counter() - t0) * 1e3
        rows.append((len(g), len(cl), verdict, t_ent, t_cl))
    return rows


def collect_ab_series():
    """Closure-kernel A/B/C on the entailment ontologies.

    Rows: (family, |G|, arrays ms, encoded ms, boxed ms).
    """
    import time

    from repro.semantics.closure import (
        rdfs_closure_arrays,
        rdfs_closure_boxed,
        rdfs_closure_encoded,
    )

    def best_of(fn, graph, repeats=5):
        best = float("inf")
        for _ in range(repeats):
            t0 = time.perf_counter()
            fn(graph)
            best = min(best, (time.perf_counter() - t0) * 1e3)
        return best

    rows = []
    for spec in SIZES:
        g = ontology(spec)
        rows.append(
            (
                "schema+instances",
                len(g),
                best_of(rdfs_closure_arrays, g),
                best_of(rdfs_closure_encoded, g),
                best_of(rdfs_closure_boxed, g),
            )
        )
    return rows
