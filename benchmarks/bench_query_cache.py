#!/usr/bin/env python3
"""Query-cache serving benchmark → ``BENCH_query.json``.

Workloads over the closed synthetic ontology (the ingest family: fixed
schema, near-linear closure), all against one :class:`TripleStore` with
a warm normal form so only *serving* cost is measured:

* **plan-hit** — a pool of selective join queries (the sp-lifted
  ``related`` predicate: huge candidate domains; a leaf-class ``type``
  pattern: few solutions) asked repeatedly.  Tier 1 is isolated via
  ``answer_cache=False``: every request re-enumerates, but candidate
  collection and arc consistency are reused.  Cold = cache disabled,
  full prepare per request.

* **containment-hit** — one general join query is admitted, then a
  stream of *distinct* subject-bound specializations is served by
  Theorem 5.5/5.7 certificates (filtering the cached valuation set)
  instead of re-searching.  Cold = each specialization evaluated from
  scratch.

* **zipf-stream** — a Zipf-weighted stream over a mixed pool (joins,
  single patterns, class memberships): the end-to-end hit-rate story,
  misses included.

* **disabled-overhead** — ``store.query`` with *no* cache attached vs a
  direct ``answers()`` call: the dispatch layer must stay ≤ 1.1x (the
  regression gate's within-run check, like the guard/obs overhead A/Bs).

``--smoke`` runs the CI-sized ladder.  Both ladders contain the 20k-
triple row so ``check_regression.py`` always finds a common size.
"""

import argparse
import json
import os
import random
import sys
import time

sys.path.insert(
    0,
    os.path.join(
        os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src"
    ),
)
sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

from bench_util import atomic_write_json

from repro.core import Triple, URI, Variable
from repro.core.vocabulary import TYPE
from repro.generators import synthetic_ontology_graph
from repro.generators.ontology import DEFAULT_CLASSES
from repro.query import answers, head_body_query
from repro.query.cache import CONTAINMENT_HITS, HITS
from repro.store import TripleStore

#: Size ladders (input triples; the closure is ≈ 4–5x).  Both contain
#: the 20k row so the regression gate always has a common size.
SMOKE_SIZES = [20_000]
FULL_SIZES = [20_000, 60_000]

#: First leaf index of the synthetic ontology's class tree.
_LEAF_BASE = (DEFAULT_CLASSES - 1) // 2

_X, _Y, _Z = Variable("x"), Variable("y"), Variable("z")
_LINKED = URI("linked")


def selective_join(class_index, subject=None):
    """``(?x related ?y)(?y type c_m)``: wide domains, few solutions."""
    s = subject if subject is not None else _X
    body = [
        Triple(s, URI("related"), _Y),
        Triple(_Y, TYPE, URI(f"c{class_index}")),
    ]
    return head_body_query(head=[Triple(s, _LINKED, _Y)], body=body)


def edge_query(property_index):
    body = [Triple(_X, URI(f"p{property_index}"), _Y)]
    return head_body_query(head=[Triple(_X, _LINKED, _Y)], body=body)


def membership_query(class_index):
    body = [Triple(_X, TYPE, URI(f"c{class_index}"))]
    return head_body_query(head=[Triple(_X, TYPE, URI(f"c{class_index}"))], body=body)


def _time_ms(fn):
    t0 = time.perf_counter()
    fn()
    return (time.perf_counter() - t0) * 1e3


def _best_of(fn, repeats):
    return min(_time_ms(fn) for _ in range(repeats))


def _run_stream(store, stream):
    for q in stream:
        store.query(q)


def bench_plan_tier(store, repeats):
    # Selective *negative* probes: leaf classes whose tree offset is not
    # a multiple of 8 have no members in the synthetic family, so the
    # answer is empty — but a cold request still collects and
    # arc-narrows the huge ``related`` candidate list to discover that.
    # A plan hit replays the cached (empty-domain) conclusion.
    pool = [selective_join(_LEAF_BASE + offset) for offset in (1, 2, 3, 5, 6, 7)]
    store.disable_query_cache()
    cold_ms = _best_of(lambda: _run_stream(store, pool), repeats)

    store.enable_query_cache(answer_cache=False)
    _run_stream(store, pool)  # warm the plans
    cached_ms = _best_of(lambda: _run_stream(store, pool), repeats)
    store.disable_query_cache()
    return cold_ms, cached_ms, len(pool)


def _merged_specializations(class_index):
    """Cyclic probes contained in the general join: σ merges x and y.

    ``(?u related ?u)(?u type c_m)`` is expensive to evaluate cold (the
    repeated-term filter walks every ``related`` row) but is served from
    the general entry's valuation set by checking ``w(x) = w(y)`` per
    cached valuation.  Three head/constraint variants keep every request
    in the stream distinct.
    """
    u = Variable("u")
    body = [
        Triple(u, URI("related"), u),
        Triple(u, TYPE, URI(f"c{class_index}")),
    ]
    return [
        head_body_query(head=[Triple(u, _LINKED, u)], body=body),
        head_body_query(
            head=[Triple(u, _LINKED, u)], body=body, constraints=[u]
        ),
        head_body_query(
            head=[Triple(u, TYPE, URI(f"c{class_index}"))], body=body
        ),
    ]


def bench_containment_tier(store, repeats):
    classes = [_LEAF_BASE + 8 * i for i in range(8)]  # populated leaves
    generals = [selective_join(m) for m in classes]
    stream = [q for m in classes for q in _merged_specializations(m)]

    store.disable_query_cache()
    cold_ms = _best_of(lambda: _run_stream(store, stream), repeats)

    best = float("inf")
    for _ in range(repeats):
        # Fresh cache per repeat: every request in the timed pass must
        # be a first-encounter containment hit, never an exact replay.
        cache = store.enable_query_cache()
        _run_stream(store, generals)  # admit the general entries (untimed)
        before = store.metrics.counter(CONTAINMENT_HITS)
        best = min(best, _time_ms(lambda: _run_stream(store, stream)))
        served = store.metrics.counter(CONTAINMENT_HITS) - before
        assert served == len(stream), (served, len(stream), cache.info())
        store.disable_query_cache()
    return cold_ms, best, len(stream)


def zipf_stream(rng, pool, length):
    weights = [1.0 / (rank + 1) for rank in range(len(pool))]
    return rng.choices(pool, weights=weights, k=length)


def bench_zipf(store, length, seed=7):
    rng = random.Random(seed)
    pool = (
        [selective_join(_LEAF_BASE + i) for i in range(6)]
        + [edge_query(10 + j) for j in range(9)]
        + [membership_query(_LEAF_BASE + 40 + m) for m in range(9)]
    )
    rng.shuffle(pool)
    stream = zipf_stream(rng, pool, length)

    store.disable_query_cache()
    cold_ms = _time_ms(lambda: _run_stream(store, stream))

    store.enable_query_cache()
    h0 = store.metrics.counter(HITS) + store.metrics.counter(CONTAINMENT_HITS)
    cached_ms = _time_ms(lambda: _run_stream(store, stream))
    h1 = store.metrics.counter(HITS) + store.metrics.counter(CONTAINMENT_HITS)
    store.disable_query_cache()
    return cold_ms, cached_ms, (h1 - h0) / length, length


def bench_disabled_overhead(store, repeats):
    """``store.query`` without a cache vs a direct ``answers()`` call."""
    pool = [edge_query(10 + j) for j in range(4)] + [
        membership_query(_LEAF_BASE + m) for m in range(4)
    ]
    store.disable_query_cache()
    dataset = store.dataset()
    target = store.normal_form()

    def plain():
        for q in pool:
            answers(q, dataset, target=target)

    def dispatched():
        _run_stream(store, pool)

    plain()  # joint warm-up
    # Interleave the two sides so they share every noise source.
    plain_ms = disabled_ms = float("inf")
    for _ in range(repeats + 2):
        plain_ms = min(plain_ms, _time_ms(plain))
        disabled_ms = min(disabled_ms, _time_ms(dispatched))
    return plain_ms, disabled_ms


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument(
        "--smoke", action="store_true", help="CI-sized run (20k triples)"
    )
    ap.add_argument("--out", default="BENCH_query.json")
    args = ap.parse_args(argv)

    sizes = SMOKE_SIZES if args.smoke else FULL_SIZES
    repeats = 2 if args.smoke else 3
    zipf_length = 120 if args.smoke else 240

    rows = []
    overhead_rows = []
    for n in sizes:
        store = TripleStore()
        store.add_all(synthetic_ontology_graph(n))
        store.normal_form()  # warm closure + core outside all timings

        cold, cached, pool_size = bench_plan_tier(store, repeats)
        rows.append(
            {
                "workload": "plan-hit",
                "size": n,
                "queries": pool_size,
                "cold_ms": cold,
                "cached_ms": cached,
                "speedup": cold / cached if cached else None,
            }
        )

        containment = bench_containment_tier(store, repeats)
        if containment is not None:
            cold, cached, count = containment
            rows.append(
                {
                    "workload": "containment-hit",
                    "size": n,
                    "queries": count,
                    "cold_ms": cold,
                    "cached_ms": cached,
                    "speedup": cold / cached if cached else None,
                }
            )

        cold, cached, hit_rate, length = bench_zipf(store, zipf_length)
        rows.append(
            {
                "workload": "zipf-stream",
                "size": n,
                "queries": length,
                "cold_ms": cold,
                "cached_ms": cached,
                "speedup": cold / cached if cached else None,
                "hit_rate": hit_rate,
            }
        )

        plain_ms, disabled_ms = bench_disabled_overhead(store, repeats)
        overhead_rows.append(
            {
                "workload": "query dispatch",
                "size": n,
                "plain_ms": plain_ms,
                "disabled_ms": disabled_ms,
                "overhead": disabled_ms / plain_ms if plain_ms else None,
            }
        )

    payload = {
        "meta": {
            "mode": "smoke" if args.smoke else "full",
            "repeats": repeats,
            "python": sys.version.split()[0],
        },
        "query_cache": {"rows": rows},
        "disabled_overhead": {"rows": overhead_rows},
    }
    atomic_write_json(args.out, payload)
    for row in rows:
        print(
            f"{row['workload']:18s} n={row['size']:<7d} "
            f"cold {row['cold_ms']:9.2f} ms  cached {row['cached_ms']:8.2f} ms "
            f"({row['speedup']:.1f}x)"
            + (
                f"  hit-rate {row['hit_rate']:.2f}"
                if "hit_rate" in row
                else ""
            )
        )
    for row in overhead_rows:
        print(
            f"{row['workload']:18s} n={row['size']:<7d} "
            f"plain {row['plain_ms']:9.2f} ms  disabled {row['disabled_ms']:8.2f} ms "
            f"({row['overhead']:.3f}x)"
        )
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
