"""Path-query evaluation (the future-work extension, module
``repro.navigation``).

Series: single-source reachability vs all-pairs materialization on
growing chain/random graphs, with and without RDFS closure semantics.
"""

import pytest

from repro.core import URI
from repro.generators import random_simple_rdf_graph, sc_chain_with_instance
from repro.navigation import evaluate_path, parse_path, reachable_from

SIZES = [50, 100, 200]


def data(n, seed=37):
    return random_simple_rdf_graph(n, n // 4, num_predicates=2, seed=seed)


@pytest.mark.parametrize("n", SIZES)
def test_single_source_star(benchmark, n):
    g = data(n)
    start = sorted(g.subjects(), key=str)[0]
    expr = parse_path("p0*")
    benchmark(reachable_from, expr, g, start)


@pytest.mark.parametrize("n", SIZES)
def test_all_pairs_plus(benchmark, n):
    g = data(n)
    expr = parse_path("p0+")
    benchmark(evaluate_path, expr, g)


@pytest.mark.parametrize("n", SIZES)
def test_alternation_sequence(benchmark, n):
    g = data(n)
    expr = parse_path("(p0|p1)/p0")
    benchmark(evaluate_path, expr, g)


@pytest.mark.parametrize("n", [8, 16, 32])
def test_rdfs_navigation(benchmark, n):
    g = sc_chain_with_instance(n)
    expr = parse_path("type/sc*")
    result = benchmark(evaluate_path, expr, g, rdfs=True)
    start = URI("item")
    classes = {y for x, y in result if x == start}
    assert len(classes) == n + 1  # every class in the chain


def collect_series():
    import time

    rows = []
    for n in SIZES:
        g = data(n)
        start = sorted(g.subjects(), key=str)[0]
        expr = parse_path("p0+")
        t0 = time.perf_counter()
        reachable_from(expr, g, start)
        t_single = (time.perf_counter() - t0) * 1e3
        t0 = time.perf_counter()
        pairs = evaluate_path(expr, g)
        t_all = (time.perf_counter() - t0) * 1e3
        rows.append((n, len(pairs), t_single, t_all))
    return rows
