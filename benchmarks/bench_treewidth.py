"""Bounded-treewidth entailment (the third polynomial case of §2.4).

Series: entailment of width-2 cyclic patterns (ladders of blank nodes)
through the tree-decomposition pipeline vs the general backtracking
solver; the acyclic pipeline cannot process these at all.
"""

import pytest

from repro.core import BNode, RDFGraph, Triple, URI
from repro.generators import random_simple_rdf_graph
from repro.relational import (
    simple_entails_acyclic,
    simple_entails_treewidth,
)
from repro.semantics import simple_entails

RUNG_COUNTS = [2, 3, 4]
DATA_SIZE = 120


def blank_ladder(rungs):
    """A 2×n grid of blanks: treewidth 2, definitely cyclic."""
    p = URI("p0")
    triples = []
    for i in range(rungs):
        triples.append(Triple(BNode(f"A{i}"), p, BNode(f"A{i+1}")))
        triples.append(Triple(BNode(f"B{i}"), p, BNode(f"B{i+1}")))
    for i in range(rungs + 1):
        triples.append(Triple(BNode(f"A{i}"), p, BNode(f"B{i}")))
    return RDFGraph(triples)


def data_graph():
    return random_simple_rdf_graph(DATA_SIZE, 12, num_predicates=1, seed=41)


@pytest.mark.parametrize("n", RUNG_COUNTS)
def test_ladder_treewidth_pipeline(benchmark, n):
    g1 = data_graph()
    g2 = blank_ladder(n)
    benchmark(simple_entails_treewidth, g1, g2)


@pytest.mark.parametrize("n", RUNG_COUNTS)
def test_ladder_backtracking(benchmark, n):
    g1 = data_graph()
    g2 = blank_ladder(n)
    benchmark(simple_entails, g1, g2)


def test_ladders_are_cyclic():
    for n in RUNG_COUNTS:
        with pytest.raises(ValueError):
            simple_entails_acyclic(data_graph(), blank_ladder(n))


def test_agreement():
    g1 = data_graph()
    for n in RUNG_COUNTS:
        g2 = blank_ladder(n)
        assert simple_entails_treewidth(g1, g2) == simple_entails(g1, g2)


def collect_series():
    import time

    rows = []
    g1 = data_graph()
    for n in RUNG_COUNTS:
        g2 = blank_ladder(n)
        t0 = time.perf_counter()
        verdict = simple_entails_treewidth(g1, g2)
        t_tw = (time.perf_counter() - t0) * 1e3
        t0 = time.perf_counter()
        simple_entails(g1, g2)
        t_back = (time.perf_counter() - t0) * 1e3
        rows.append((n, verdict, t_tw, t_back))
    return rows
