"""E25 — Theorem 6.1: the headline complexity split.

Two series over query-answer emptiness:

* **data complexity** (fixed query, growing database): the paper proves
  this polynomial — measured time should grow smoothly (roughly
  linearly for our star/chain queries);
* **query complexity** (fixed database, growing query): NP-complete via
  the 3SAT encoding — measured time on *unsatisfiable* formulas (where
  the solver cannot get lucky) should blow up with the variable count.

This is the experiment whose "shape" result — who wins, where the
regimes separate — the reproduction must preserve.
"""

import pytest

from repro.generators import chain_query, random_ground_graph
from repro.query import pre_answers
from repro.reductions import (
    CNF,
    Clause,
    cnf_to_rdf_query,
    random_3sat,
    sat_database_rdf,
)

DATA_SIZES = [50, 100, 200, 400]
QUERY_VARIABLES = [4, 6, 8]


def pigeonhole_like_unsat(n):
    """An unsatisfiable 3-CNF: force x0 true and false through chains."""
    clauses = [Clause((("x0", True), ("x0", True), ("x0", True)))]
    clauses.append(Clause((("x0", False), ("x0", False), ("x0", False))))
    # Padding clauses over the other variables to grow the query.
    for i in range(1, n - 1):
        clauses.append(
            Clause(((f"x{i}", True), (f"x{i+1}", True), ("x0", True)))
        )
    return CNF(clauses=tuple(clauses))


@pytest.mark.parametrize("size", DATA_SIZES)
def test_data_complexity_fixed_query(benchmark, size):
    query = chain_query(3, predicate="p0")
    database = random_ground_graph(size, size // 3, num_predicates=1, seed=29)
    benchmark(pre_answers, query, database)


@pytest.mark.parametrize("n", QUERY_VARIABLES)
def test_query_complexity_sat_instances(benchmark, n):
    database = sat_database_rdf()
    formula = random_3sat(n, int(4.3 * n), seed=31)
    query = cnf_to_rdf_query(formula)
    benchmark(pre_answers, query, database)


@pytest.mark.parametrize("n", QUERY_VARIABLES)
def test_query_complexity_unsat_instances(benchmark, n):
    database = sat_database_rdf()
    formula = pigeonhole_like_unsat(n)
    query = cnf_to_rdf_query(formula)
    result = benchmark(pre_answers, query, database)
    assert result == []


def collect_series():
    import time

    rows = []
    query = chain_query(3, predicate="p0")
    for size in DATA_SIZES:
        database = random_ground_graph(size, size // 3, num_predicates=1, seed=29)
        t0 = time.perf_counter()
        found = pre_answers(query, database)
        rows.append(
            ("data-complexity", size, len(found), (time.perf_counter() - t0) * 1e3)
        )
    database = sat_database_rdf()
    for n in QUERY_VARIABLES:
        formula = random_3sat(n, int(4.3 * n), seed=31)
        q = cnf_to_rdf_query(formula)
        t0 = time.perf_counter()
        found = pre_answers(q, database)
        rows.append(
            ("query-complexity", n, len(found), (time.perf_counter() - t0) * 1e3)
        )
    return rows
