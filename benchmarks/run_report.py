#!/usr/bin/env python3
"""Regenerate every experiment series and print the report tables.

This is the harness behind EXPERIMENTS.md: each section corresponds to
one experiment id from DESIGN.md's per-experiment index and prints the
measured rows next to the paper's predicted shape.

Run:  python benchmarks/run_report.py            # full report
      python benchmarks/run_report.py --quick    # CI smoke: E4 + E5 + store

Both modes re-measure the two entailment experiments (E4 hardness, E5
acyclic routing) plus the encoded-vs-boxed closure-kernel A/B and write
``BENCH_entailment.json`` at the repo root: the pre-planner seed
baselines next to the current run's numbers, so perf regressions in the
matching planner or the dictionary-encoded kernel show up in review
diffs (and trip benchmarks/check_regression.py in CI).  They
also run the mixed insert/delete store workload and write
``BENCH_store.json``: the seed's recompute-on-delete baseline next to
the DRed deletion maintenance numbers, plus the read loop against the
live dataset cache.

After the timed series, one *instrumented* representative pass per
section runs under ``repro.obs.instrumentation()`` (separately, so the
registry/tracer overhead never inflates the reported timings).  The
resulting counter/span snapshots are attached to each bench entry under
a ``"metrics"`` key and also written standalone as
``BENCH_metrics.json``.
"""

import argparse
import json
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

import bench_acyclic_entailment
from bench_util import atomic_write_json
import bench_closure_ablation
import bench_closure_growth
import bench_containment
import bench_core_hardness
import bench_entailment_hardness
import bench_guard_overhead
import bench_membership
import bench_minimal
import bench_normal_form
import bench_owl
import bench_paths
import bench_query_vs_data_complexity
import bench_redundancy
import bench_rdfs_entailment
import bench_rho
import bench_store
import bench_treewidth


def section(exp_id: str, title: str, prediction: str) -> None:
    print(f"\n{'=' * 72}")
    print(f"{exp_id}: {title}")
    print(f"paper's prediction: {prediction}")
    print("-" * 72)


#: Pre-planner baselines (seed commit, single-run timings on the same
#: workloads) — the "before" column of BENCH_entailment.json.
SEED_BASELINE = {
    "E4": [
        {"family": "easy/blank-chain", "n": 10, "ms": 0.056},
        {"family": "easy/blank-chain", "n": 20, "ms": 0.124},
        {"family": "easy/blank-chain", "n": 40, "ms": 0.080},
        {"family": "hard/non-3-colorable", "n": 6, "ms": 4.792},
        {"family": "hard/non-3-colorable", "n": 8, "ms": 4.122},
        {"family": "hard/non-3-colorable", "n": 10, "ms": 60.030},
    ],
    "E5": [
        {"chain": 4, "yannakakis_ms": 7.503, "backtrack_ms": 0.399},
        {"chain": 8, "yannakakis_ms": 12.721, "backtrack_ms": 0.611},
        {"chain": 16, "yannakakis_ms": 26.676, "backtrack_ms": 1.011},
        {"chain": 32, "yannakakis_ms": 63.876, "backtrack_ms": 2.322},
    ],
}


def entailment_sections():
    """Run + print E4 and E5; return their rows for the JSON artifact."""
    section(
        "E4",
        "simple entailment hardness (Theorem 2.9)",
        "hard (coloring) instances blow up; easy (acyclic) stay flat",
    )
    print(f"{'family':22s} {'n':>4s} {'ms':>10s}")
    e4_rows = bench_entailment_hardness.collect_series()
    for family, n, ms in e4_rows:
        print(f"{family:22s} {n:4d} {ms:10.3f}")

    section(
        "E5",
        "blank-acyclic entailment (Section 2.4)",
        "Yannakakis pipeline polynomial; agrees with backtracking",
    )
    print(f"{'chain':>6s} {'entailed':>9s} {'yannakakis ms':>14s} {'backtrack ms':>13s}")
    e5_rows = bench_acyclic_entailment.collect_series()
    for n, verdict, t_yann, t_back in e5_rows:
        print(f"{n:6d} {str(verdict):>9s} {t_yann:14.3f} {t_back:13.3f}")

    return e4_rows, e5_rows


def _kernel_row(family, size, arr_ms, enc_ms, box_ms):
    """Print + payload for one closure-kernel A/B/C row.

    ``boxed_ms`` is None on the extended growth sizes (the boxed
    baseline is skipped there); ``speedup`` is arrays-vs-encoded — the
    ratio the CI gate and the ISSUE target are stated over.
    """
    speedup = enc_ms / arr_ms if arr_ms else float("inf")
    box_txt = f"{box_ms:9.3f}" if box_ms is not None else f"{'—':>9s}"
    print(
        f"{family:20s} {size:6d} {arr_ms:10.3f} {enc_ms:11.3f} "
        f"{box_txt} {speedup:7.2f}x"
    )
    row = {
        "family": family,
        "size": size,
        "arrays_ms": round(arr_ms, 3),
        "encoded_ms": round(enc_ms, 3),
        "boxed_ms": round(box_ms, 3) if box_ms is not None else None,
        "speedup": round(speedup, 2),
    }
    if box_ms is not None:
        row["speedup_encoded_vs_boxed"] = round(
            box_ms / enc_ms if enc_ms else float("inf"), 2
        )
    return row


def closure_kernel_section():
    """Run + print the closure-kernel A/B/C; return the payload.

    Runs in both full and --quick mode: the committed rows in
    ``BENCH_entailment.json`` are the baseline the CI perf gate
    (benchmarks/check_regression.py) compares fresh runs against.
    """
    section(
        "A3",
        "ablation: closure kernels A/B/C (arrays / encoded / boxed)",
        "sorted-run merge kernel ≥3x over encoded on the largest sp-chain",
    )
    print(
        f"{'family':20s} {'|G|':>6s} {'arrays ms':>10s} {'encoded ms':>11s} "
        f"{'boxed ms':>9s} {'arr/enc':>8s}"
    )
    growth, entailment = [], []
    for family, size, arr_ms, enc_ms, box_ms in (
        bench_closure_growth.collect_ab_series()
    ):
        growth.append(_kernel_row(family, size, arr_ms, enc_ms, box_ms))
    for family, size, arr_ms, enc_ms, box_ms in (
        bench_rdfs_entailment.collect_ab_series()
    ):
        entailment.append(_kernel_row(family, size, arr_ms, enc_ms, box_ms))
    return {
        "units": (
            "ms (best of 5 runs each; extended sp-chain sizes best of "
            f"{bench_closure_growth.REPEATS_LARGE}, boxed skipped there)"
        ),
        "growth": growth,
        "entailment": entailment,
    }


def guard_overhead_section():
    """Run + print the guard-overhead A/B; return the payload.

    Runs in both full and --quick mode: the CI gate
    (benchmarks/check_regression.py) fails a fresh run whose
    infinite-budget guarded timing exceeds 1.1x the unguarded one on
    either sentinel workload.
    """
    section(
        "R1",
        "robustness: execution-guard overhead (repro.robustness.guard)",
        "guarded with an unlimited budget within noise (≤1.1x) of unguarded",
    )
    print(
        f"{'workload':22s} {'unguarded ms':>13s} {'guarded ms':>11s} "
        f"{'overhead':>9s}"
    )
    rows = []
    for name, plain_ms, guarded_ms, overhead in (
        bench_guard_overhead.collect_ab_series()
    ):
        print(
            f"{name:22s} {plain_ms:13.3f} {guarded_ms:11.3f} "
            f"{overhead:8.3f}x"
        )
        rows.append(
            {
                "workload": name,
                "unguarded_ms": round(plain_ms, 3),
                "guarded_ms": round(guarded_ms, 3),
                "overhead": round(overhead, 3),
            }
        )
    return {
        "units": (
            "ms (interleaved best of "
            f"{bench_guard_overhead.REPEATS} runs each)"
        ),
        "rows": rows,
    }


def store_section():
    """Run + print the store write-path workload; return the payload."""
    section(
        "A2b",
        "delta-aware store writes (repro.store)",
        "DRed deletion ≪ recompute-on-delete; reads O(1) from the cache",
    )
    payload = bench_store.store_payload()
    delete = payload["delete"]
    print(
        f"closure size {delete['closure_size']}, "
        f"{delete['deletions']} single-triple deletions"
    )
    print(f"{'victim':>7s} {'dred ms':>9s} {'recompute ms':>13s}")
    for i, (dred, rec) in enumerate(
        zip(delete["dred_ms"], delete["seed_recompute_ms"])
    ):
        print(f"{i:7d} {dred:9.3f} {rec:13.3f}")
    print(
        f"median: dred {delete['median_dred_ms']:.3f} ms, "
        f"seed recompute {delete['median_seed_ms']:.3f} ms "
        f"→ speedup {delete['speedup']}x"
    )
    reads = payload["read_loop"]
    print(
        f"read loop ({reads['reads']} dataset() calls after a write): "
        f"first {reads['first_call_ms']:.3f} ms, "
        f"then {reads['cached_avg_us']:.1f} us/call cached "
        f"vs {reads['seed_rebuild_avg_us']:.1f} us/call seed rebuild"
    )
    return payload


def collect_metrics_snapshots():
    """One instrumented representative pass per benchmark section.

    Runs *after* (and apart from) the timed series so the registry and
    tracer never inflate the reported numbers.  Each snapshot pairs the
    counter/gauge/histogram state with the per-span rollup for one
    representative workload:

    * ``E4`` — the hardest non-3-colorable instance (planner
      backtracking under exhaustive refutation);
    * ``E5`` — the longest blank chain through both the Yannakakis
      pipeline and the backtracking solver;
    * ``store`` — materialize, insert stream, one DRed deletion, then a
      short read loop against the dataset cache;
    * ``ingest`` — a 2-worker smoke-sized bulk load plus a 2-shard
      partitioned close, demonstrating the cross-process snapshot
      merge: worker/shard counters arrive loss-free in the one parent
      registry (``ingest.worker_snapshots``,
      ``closure.partitioned.shard.<i>.*``).
    """
    from repro import obs
    from repro.generators import blank_chain, random_digraph
    from repro.reductions import DiGraph, encode_graph
    from repro.relational import simple_entails_acyclic
    from repro.semantics import simple_entails
    from repro.store import TripleStore

    def snap(registry, tracer):
        return {"metrics": registry.snapshot(), "spans": tracer.aggregate()}

    snapshots = {}

    with obs.instrumentation() as (registry, tracer):
        n = bench_entailment_hardness.HARD_SIZES[-1]
        base = random_digraph(n, 2 * n, seed=9)
        instance = DiGraph(
            edges=set(base.edges) | set(DiGraph.complete(4).edges)
        )
        k3 = encode_graph(DiGraph.complete(3))
        simple_entails(k3, encode_graph(instance.symmetrized()))
        snapshots["E4"] = snap(registry, tracer)

    with obs.instrumentation() as (registry, tracer):
        g1 = bench_acyclic_entailment.data_graph()
        g2 = blank_chain(
            bench_acyclic_entailment.PATTERN_SIZES[-1], predicate="p0"
        )
        simple_entails_acyclic(g1, g2)
        simple_entails(g1, g2)
        snapshots["E5"] = snap(registry, tracer)

    with obs.instrumentation() as (registry, tracer):
        store = TripleStore()
        store.add_all(bench_store.base_ontology(bench_store.BASE_SPECS[0]))
        store.closure()
        inserts = bench_store.insert_stream(bench_store.INSERTS)
        for t in inserts:
            store.add(t)
        store.remove(inserts[0])
        for _ in range(8):
            store.dataset()
        snapshots["store"] = snap(registry, tracer)

    with obs.instrumentation() as (registry, tracer):
        import os
        import tempfile

        from repro.generators import write_synthetic_ontology
        from repro.ingest import load_ntriples
        from repro.semantics.closure import rdfs_closure_partitioned_rows

        with tempfile.TemporaryDirectory(prefix="repro-obs-") as tmp:
            path = os.path.join(tmp, "onto.nt")
            write_synthetic_ontology(path, 10_000)
            loaded = load_ntriples(path, workers=2)
            rdfs_closure_partitioned_rows(loaded.runs.rows(), shards=2)
        snapshots["ingest"] = snap(registry, tracer)

    return snapshots


def write_metrics_json(snapshots, path: Path) -> None:
    """Standalone instrumentation snapshots, one per bench section."""
    payload = {
        "description": (
            "Observability snapshots from one instrumented representative "
            "pass per benchmark section (repro.obs registry counters and "
            "tracer span rollups; timings are collected separately and "
            "never run instrumented). "
            "Regenerate with: python benchmarks/run_report.py"
        ),
        "sections": snapshots,
    }
    atomic_write_json(path, payload)
    print(f"wrote {path}")


def write_store_json(payload, path: Path, metrics=None) -> None:
    """Seed-vs-current store write numbers as a reviewable artifact."""
    if metrics is not None:
        payload = dict(payload, metrics=metrics)
    atomic_write_json(path, payload)
    print(f"\nwrote {path}")


def write_bench_json(
    e4_rows,
    e5_rows,
    path: Path,
    metrics=None,
    closure_kernel=None,
    guard_overhead=None,
) -> None:
    """Seed-vs-current E4/E5 numbers as a reviewable JSON artifact."""
    payload = {
        "description": (
            "Entailment benchmarks (E4 hardness, E5 acyclic routing): "
            "pre-planner seed baseline vs the current matching planner, "
            "plus the encoded-vs-boxed closure kernel A/B. "
            "Regenerate with: python benchmarks/run_report.py"
        ),
        "units": "ms (best of 5 runs for 'current'; seed was single-run)",
        "seed": SEED_BASELINE,
        "current": {
            "E4": [
                {"family": family, "n": n, "ms": round(ms, 3)}
                for family, n, ms in e4_rows
            ],
            "E5": [
                {
                    "chain": n,
                    "yannakakis_ms": round(t_yann, 3),
                    "backtrack_ms": round(t_back, 3),
                }
                for n, _verdict, t_yann, t_back in e5_rows
            ],
        },
    }
    if closure_kernel is not None:
        payload["closure_kernel"] = closure_kernel
    if guard_overhead is not None:
        payload["guard_overhead"] = guard_overhead
    if metrics is not None:
        payload["metrics"] = metrics
    atomic_write_json(path, payload)
    print(f"\nwrote {path}")


def main(argv=None) -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick",
        action="store_true",
        help="CI smoke mode: entailment sections (E4, E5) + store writes",
    )
    args = parser.parse_args(argv)

    root = Path(__file__).parent.parent
    print("Experiment report — Foundations of Semantic Web Databases")
    if args.quick:
        print(
            "(quick mode: entailment + closure kernel + guard overhead "
            "+ store writes)"
        )
        e4_rows, e5_rows = entailment_sections()
        kernel_ab = closure_kernel_section()
        guard_ab = guard_overhead_section()
        store_rows = store_section()
        snapshots = collect_metrics_snapshots()
        write_bench_json(
            e4_rows,
            e5_rows,
            root / "BENCH_entailment.json",
            metrics={k: snapshots[k] for k in ("E4", "E5")},
            closure_kernel=kernel_ab,
            guard_overhead=guard_ab,
        )
        write_store_json(
            store_rows,
            root / "BENCH_store.json",
            metrics=snapshots["store"],
        )
        write_metrics_json(snapshots, root / "BENCH_metrics.json")
        print("\nreport complete.")
        return

    section("E8", "closure growth (Theorem 3.6.3)", "|cl(G)| = Θ(|G|²)")
    print(f"{'family':20s} {'|G|':>6s} {'|cl(G)|':>8s}")
    for family, size, closed in bench_closure_growth.collect_series():
        print(f"{family:20s} {size:6d} {closed:8d}")

    section(
        "E8b",
        "closure membership (Theorem 3.6.4)",
        "oracle ≪ materialization, gap widening with |G|",
    )
    print(f"{'|G|':>6s} {'oracle ms':>10s} {'materialize ms':>15s}")
    for n, t_oracle, t_mat in bench_membership.collect_series():
        print(f"{n:6d} {t_oracle:10.3f} {t_mat:15.3f}")

    e4_rows, e5_rows = entailment_sections()

    section(
        "E6",
        "RDFS entailment (Theorem 2.10)",
        "poly-size witness: closure (quadratic) + map search",
    )
    print(f"{'|G|':>6s} {'|cl|':>6s} {'verdict':>8s} {'entail ms':>10s} {'closure ms':>11s}")
    for size, cl, verdict, t_ent, t_cl in bench_rdfs_entailment.collect_series():
        print(f"{size:6d} {cl:6d} {str(verdict):>8s} {t_ent:10.3f} {t_cl:11.3f}")

    section(
        "E11",
        "leanness / cores (Theorem 3.12)",
        "coNP leanness on cores (odd cycles) costlier than easy refutations",
    )
    print(f"{'family':18s} {'n':>4s} {'ms':>10s}")
    for family, n, ms in bench_core_hardness.collect_series():
        print(f"{family:18s} {n:4d} {ms:10.3f}")

    section(
        "E13",
        "minimal representations (Theorem 3.16)",
        "unique minimum recovered from saturated hierarchies",
    )
    print(f"{'|G|':>6s} {'|min|':>6s} {'ms':>10s}")
    for size, minimum, ms in bench_minimal.collect_series():
        print(f"{size:6d} {minimum:6d} {ms:10.3f}")

    section(
        "E15/E16",
        "normal forms (Theorems 3.19/3.20)",
        "nf = core ∘ closure; closure dominates on ground-heavy data",
    )
    print(f"{'|G|':>6s} {'|cl|':>6s} {'|nf|':>6s} {'closure ms':>11s} {'core ms':>9s}")
    for size, cl, nf, t_cl, t_core in bench_normal_form.collect_series():
        print(f"{size:6d} {cl:6d} {nf:6d} {t_cl:11.3f} {t_core:9.3f}")

    section(
        "E24",
        "containment (Theorems 5.6/5.12)",
        "NP certificates; Ω_q grows with bodies under premises",
    )
    print(f"{'series':14s} {'n':>4s} {'value':>6s} {'ms':>10s}")
    for series, n, value, ms in bench_containment.collect_series():
        print(f"{series:14s} {n:4d} {str(value):>6s} {ms:10.3f}")

    section(
        "E25",
        "query vs data complexity (Theorem 6.1)",
        "polynomial in |D| at fixed q; exponential in |q| at fixed D",
    )
    print(f"{'series':18s} {'n':>6s} {'answers':>8s} {'ms':>12s}")
    for series, n, count, ms in bench_query_vs_data_complexity.collect_series():
        print(f"{series:18s} {n:6d} {count:8d} {ms:12.3f}")

    section(
        "E27",
        "redundancy elimination (Theorems 6.2/6.3)",
        "merge-semantics leanness polynomial; union-semantics coNP",
    )
    print(f"{'workload':12s} {'n':>4s} {'answers':>8s} {'union ms':>10s} {'merge ms':>10s}")
    for workload, n, answers, t_union, t_merge in bench_redundancy.collect_series():
        print(f"{workload:12s} {n:4d} {answers:8d} {t_union:10.3f} {t_merge:10.3f}")

    section(
        "A1",
        "ablation: three closure implementations (DESIGN.md §5)",
        "staged < datalog semi-naive < literal rule engine",
    )
    print(f"{'|G|':>6s} {'staged ms':>10s} {'rule-engine ms':>15s} {'datalog ms':>11s}")
    for size, t_staged, t_rules, t_datalog in bench_closure_ablation.collect_series():
        print(f"{size:6d} {t_staged:10.3f} {t_rules:15.3f} {t_datalog:11.3f}")

    section(
        "A2",
        "ablation: incremental closure maintenance (repro.store)",
        "delta propagation beats per-insert recomputation",
    )
    print(f"{'|base|':>7s} {'inserts':>8s} {'incremental ms':>15s} {'recompute ms':>13s}")
    for size, inserts, t_inc, t_rec in bench_store.collect_series():
        print(f"{size:7d} {inserts:8d} {t_inc:15.3f} {t_rec:13.3f}")

    kernel_ab = closure_kernel_section()
    guard_ab = guard_overhead_section()
    store_rows = store_section()

    section(
        "X1",
        "extension: path queries (repro.navigation)",
        "single-source BFS ≪ all-pairs materialization",
    )
    print(f"{'|G|':>6s} {'pairs':>6s} {'single-src ms':>14s} {'all-pairs ms':>13s}")
    for n, pairs, t_single, t_all in bench_paths.collect_series():
        print(f"{n:6d} {pairs:6d} {t_single:14.3f} {t_all:13.3f}")

    section(
        "X2",
        "extension: bounded-treewidth entailment (§2.4 third case)",
        "polynomial on width-2 cyclic patterns the acyclic pipeline rejects",
    )
    print(f"{'rungs':>6s} {'entailed':>9s} {'treewidth ms':>13s} {'backtrack ms':>13s}")
    for n, verdict, t_tw, t_back in bench_treewidth.collect_series():
        print(f"{n:6d} {str(verdict):>9s} {t_tw:13.3f} {t_back:13.3f}")

    section(
        "X5",
        "extension: the ρdf (reflexivity-free) fragment [31]",
        "ρ-closure smaller and faster; RDFS-cl = ρ-cl ∪ padding",
    )
    print(f"{'|G|':>6s} {'|RDFS-cl|':>10s} {'|ρ-cl|':>7s} {'full ms':>8s} {'ρ ms':>8s}")
    for size, full, rho, t_full, t_rho in bench_rho.collect_series():
        print(f"{size:6d} {full:10d} {rho:7d} {t_full:8.3f} {t_rho:8.3f}")

    section(
        "X6",
        "extension: pD*-lite OWL vocabulary (ter Horst [26])",
        "joint closure stays polynomial; sameAs substitution is the hot spot",
    )
    print(f"{'|G|':>6s} {'|RDFS-cl|':>10s} {'|OWL-cl|':>9s} {'rdfs ms':>8s} {'owl ms':>8s}")
    for size, rdfs_n, owl_n, t_rdfs, t_owl in bench_owl.collect_series():
        print(f"{size:6d} {rdfs_n:10d} {owl_n:9d} {t_rdfs:8.3f} {t_owl:8.3f}")

    snapshots = collect_metrics_snapshots()
    write_bench_json(
        e4_rows,
        e5_rows,
        root / "BENCH_entailment.json",
        metrics={k: snapshots[k] for k in ("E4", "E5")},
        closure_kernel=kernel_ab,
        guard_overhead=guard_ab,
    )
    write_store_json(
        store_rows, root / "BENCH_store.json", metrics=snapshots["store"]
    )
    write_metrics_json(snapshots, root / "BENCH_metrics.json")

    print("\nreport complete.")


if __name__ == "__main__":
    main()
