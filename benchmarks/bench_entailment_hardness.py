"""E4 — Theorem 2.9: simple entailment is NP-complete.

Two series over the Graph-Homomorphism encoding:

* **easy family** — ground targets / blank-acyclic patterns, where the
  solver's pruning keeps the search polynomial in practice;
* **hard family** — 3-coloring instances near the constraint-density
  threshold (random graphs into K3), where backtracking must explore.

The paper's claim is the *worst-case* separation: the hard family's
cost grows much faster with instance size than the easy family's.
"""

import pytest

from repro.generators import blank_chain, random_digraph, random_simple_rdf_graph
from repro.reductions import DiGraph, encode_graph
from repro.semantics import simple_entails

EASY_SIZES = [10, 20, 40]
HARD_SIZES = [6, 8, 10]


@pytest.mark.parametrize("n", EASY_SIZES)
def test_easy_blank_chain_entailment(benchmark, n):
    target = random_simple_rdf_graph(4 * n, n, num_predicates=1, seed=11)
    pattern = blank_chain(n // 2)
    benchmark(simple_entails, target, pattern)


@pytest.mark.parametrize("n", HARD_SIZES)
def test_hard_coloring_entailment(benchmark, n):
    # Random graph at edge density ~2.3n, near the 3-colorability
    # threshold: homomorphism search into K3 must backtrack.
    instance = random_digraph(n, int(2.3 * n), seed=5).symmetrized()
    k3 = encode_graph(DiGraph.complete(3))
    pattern = encode_graph(instance)
    benchmark(simple_entails, k3, pattern)


@pytest.mark.parametrize("n", HARD_SIZES)
def test_hard_unsatisfiable_coloring(benchmark, n):
    # K4 plus a random graph is never 3-colorable: the solver must
    # exhaust the space (the truly exponential branch).
    base = random_digraph(n, 2 * n, seed=9)
    instance = DiGraph(edges=set(base.edges) | set(DiGraph.complete(4).edges))
    instance = instance.symmetrized()
    k3 = encode_graph(DiGraph.complete(3))
    pattern = encode_graph(instance)
    result = benchmark(simple_entails, k3, pattern)
    assert result is False


def _best_of(fn, reps=5):
    """Minimum wall time over *reps* runs, in ms (robust to OS jitter)."""
    import time

    best = float("inf")
    for _ in range(reps):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best * 1e3


def collect_series():
    rows = []
    for n in EASY_SIZES:
        target = random_simple_rdf_graph(4 * n, n, num_predicates=1, seed=11)
        pattern = blank_chain(n // 2)
        ms = _best_of(lambda: simple_entails(target, pattern))
        rows.append(("easy/blank-chain", n, ms))
    k3 = encode_graph(DiGraph.complete(3))
    for n in HARD_SIZES:
        base = random_digraph(n, 2 * n, seed=9)
        instance = DiGraph(edges=set(base.edges) | set(DiGraph.complete(4).edges))
        pattern = encode_graph(instance.symmetrized())
        ms = _best_of(lambda: simple_entails(k3, pattern))
        rows.append(("hard/non-3-colorable", n, ms))
    return rows
