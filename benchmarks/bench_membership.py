"""E8b — Theorem 3.6.4: closure membership without materialization.

Series: time to answer ``t ∈ cl(G)`` through the :class:`ClosureOracle`
(near-linear preprocessing + reachability) versus materializing the
quadratic closure and probing it.  The oracle's advantage must widen
with |G|.
"""

import pytest

from repro.core import Triple, URI
from repro.core.vocabulary import SP, TYPE
from repro.generators import sc_chain_with_instance, sp_chain
from repro.semantics import ClosureOracle, rdfs_closure

SIZES = [16, 32, 64]


def probe_triples(n):
    """A bundle of membership queries spanning the chain."""
    return [
        Triple(URI("p0"), SP, URI(f"p{n}")),       # positive, long path
        Triple(URI(f"p{n // 2}"), SP, URI(f"p{n}")),  # positive, half path
        Triple(URI(f"p{n}"), SP, URI("p0")),        # negative (wrong way)
        Triple(URI("p0"), SP, URI("p0")),           # positive, reflexive
    ]


@pytest.mark.parametrize("n", SIZES)
def test_membership_via_oracle(benchmark, n):
    graph = sp_chain(n)
    probes = probe_triples(n)

    def run():
        oracle = ClosureOracle(graph)
        return [oracle.contains(t) for t in probes]

    result = benchmark(run)
    assert result == [True, True, False, True]


@pytest.mark.parametrize("n", SIZES)
def test_membership_via_materialization(benchmark, n):
    graph = sp_chain(n)
    probes = probe_triples(n)

    def run():
        closed = rdfs_closure(graph)
        return [t in closed for t in probes]

    result = benchmark(run)
    assert result == [True, True, False, True]


@pytest.mark.parametrize("n", SIZES)
def test_amortized_oracle_queries(benchmark, n):
    """Per-query cost once the oracle is built (the O(|G| log |G|) regime)."""
    graph = sc_chain_with_instance(n)
    oracle = ClosureOracle(graph)
    probes = [
        Triple(URI("item"), TYPE, URI(f"c{n}")),
        Triple(URI("item"), TYPE, URI("zzz")),
    ]
    result = benchmark(lambda: [oracle.contains(t) for t in probes])
    assert result == [True, False]


def collect_series():
    import time

    rows = []
    for n in SIZES:
        graph = sp_chain(n)
        probes = probe_triples(n)
        t0 = time.perf_counter()
        oracle = ClosureOracle(graph)
        for t in probes:
            oracle.contains(t)
        oracle_time = time.perf_counter() - t0
        t0 = time.perf_counter()
        closed = rdfs_closure(graph)
        for t in probes:
            _ = t in closed
        materialize_time = time.perf_counter() - t0
        rows.append((n, oracle_time * 1e3, materialize_time * 1e3))
    return rows
