"""E8 — Theorem 3.6.3: the closure has size Θ(|G|²).

Series: closure size and computation time for the two quadratic
families (sp chains, property fan-outs) at doubling sizes.  The paper's
claim is the asymptotic *shape*: doubling |G| should roughly quadruple
|cl(G) − G|.
"""

import time

import pytest

from repro.generators import property_fanout, sc_chain_with_instance, sp_chain
from repro.semantics import rdfs_closure
from repro.semantics.closure import (
    rdfs_closure_arrays,
    rdfs_closure_boxed,
    rdfs_closure_encoded,
)

CHAIN_SIZES = [8, 16, 32, 64]
FANOUT_SIZES = [4, 8, 16]

#: Extended growth curve for the kernel A/B/C: sp-chain(448) closes to
#: ~101k triples (the 10⁵ target).  The boxed kernel is skipped here
#: (its per-term hashing would dominate the whole bench run) and the
#: slow pair only gets REPEATS_LARGE timed runs each.
EXTENDED_CHAIN_SIZES = [128, 256, 448]
REPEATS_LARGE = 2


@pytest.mark.parametrize("n", CHAIN_SIZES)
def test_closure_sp_chain(benchmark, n):
    graph = sp_chain(n)
    result = benchmark(rdfs_closure, graph)
    assert len(result) >= n * (n - 1) // 2  # the transitive pairs


@pytest.mark.parametrize("n", CHAIN_SIZES)
def test_closure_sc_chain_with_instance(benchmark, n):
    graph = sc_chain_with_instance(n)
    result = benchmark(rdfs_closure, graph)
    assert len(result) > n


@pytest.mark.parametrize("n", FANOUT_SIZES)
def test_closure_property_fanout(benchmark, n):
    graph = property_fanout(n, n)
    result = benchmark(rdfs_closure, graph)
    # Each of the n·n uses is lifted to the super-property.
    assert len(result) >= 2 * n * n


def collect_series():
    """Size series for the report: (family, |G|, |cl(G)|)."""
    rows = []
    for n in CHAIN_SIZES:
        g = sp_chain(n)
        rows.append(("sp-chain", len(g), len(rdfs_closure(g))))
    for n in CHAIN_SIZES:
        g = sc_chain_with_instance(n)
        rows.append(("sc-chain+instance", len(g), len(rdfs_closure(g))))
    for n in FANOUT_SIZES:
        g = property_fanout(n, n)
        rows.append(("property-fanout", len(g), len(rdfs_closure(g))))
    return rows


def _best_of(fn, graph, repeats=5):
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn(graph)
        best = min(best, (time.perf_counter() - t0) * 1e3)
    return best


def collect_ab_series():
    """Kernel A/B/C: (family, |G|, arrays ms, encoded ms, boxed ms).

    Runs all three closure kernels on the same growth workloads so the
    sorted-run/merge-join speedup is a committed, reviewable number
    (the CI perf gate watches the largest sp-chain row of both the
    arrays and encoded columns).  On the extended sizes — where the
    closure reaches ~10⁵ triples — ``boxed_ms`` is None: the boxed
    kernel is only a baseline and would dominate the bench wall clock.
    """
    workloads = [("sp-chain", sp_chain(n)) for n in CHAIN_SIZES]
    workloads += [
        ("property-fanout", property_fanout(n, n)) for n in FANOUT_SIZES
    ]
    rows = []
    for family, g in workloads:
        arrays_ms = _best_of(rdfs_closure_arrays, g)
        encoded_ms = _best_of(rdfs_closure_encoded, g)
        boxed_ms = _best_of(rdfs_closure_boxed, g)
        rows.append((family, len(g), arrays_ms, encoded_ms, boxed_ms))
    for n in EXTENDED_CHAIN_SIZES:
        g = sp_chain(n)
        arrays_ms = _best_of(rdfs_closure_arrays, g, repeats=REPEATS_LARGE)
        encoded_ms = _best_of(rdfs_closure_encoded, g, repeats=REPEATS_LARGE)
        rows.append(("sp-chain", len(g), arrays_ms, encoded_ms, None))
    return rows


def test_quadratic_shape():
    """Doubling the chain roughly quadruples the derived triples."""
    sizes = {}
    for n in CHAIN_SIZES:
        g = sp_chain(n)
        sizes[n] = len(rdfs_closure(g)) - len(g)
    for small, large in zip(CHAIN_SIZES, CHAIN_SIZES[1:]):
        ratio = sizes[large] / sizes[small]
        assert 2.5 < ratio < 6.0, (small, large, ratio)
